"""Dynamic-workload simulation: job departures and rolling re-optimization.

The paper's motivating systems (lightpath provisioning, cloud hosts) have
churn: jobs depart as well as arrive.  This module replays
:class:`~busytime.core.events.DynamicTrace` event sequences — arrivals and
(possibly early) departures — against the mutable machine state of
:class:`~busytime.core.schedule.ScheduleBuilder`, whose ``assign`` /
``unassign`` mutations are both routed through the incrementally maintained
:class:`~busytime.core.events.SweepProfile` per machine.

Three policy shapes are provided, spanning the online/offline spectrum:

* :class:`NeverMigrate` — pure online: place each arrival once (arrival-order
  FirstFit by default) and never revise, the model of
  :mod:`busytime.extensions.online`;
* :class:`RollingHorizon` — every ``period`` time units, re-solve the *live*
  job set through the existing :class:`~busytime.engine.Engine` and migrate
  to the proposed assignment (adopted only when it lowers the projected
  remaining busy time, so replanning never knowingly hurts);
* :class:`MigrationBudget` — rolling horizon with at most ``budget`` moved
  jobs per replan, applied best-savings-first with per-move feasibility
  checks — the price-of-stability knob real systems turn.

Cost is accounted as *realized* busy time: each machine accrues the measure
of the time it actually spent busy under the assignments that held at the
time, integrated epoch by epoch off the maintained profiles
(``covered_measure_in``).  With no early departures and no migrations this
equals the final schedule's total busy time; early departures shrink it,
migrations re-route the future part of a job's interval to its new machine.

``verify_schedule`` stays the slow-path oracle throughout: the simulator
freezes the live sub-schedule on a configurable cadence (and at every
replan and at the end of the trace) and cross-checks every profile-backed
answer, raising
:class:`~busytime.core.schedule.ProfileOracleMismatchError` on drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.bounds import best_lower_bound
from ..core.events import DynamicTrace, TraceEvent
from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule, ScheduleBuilder
from .online import best_fit_placement, first_fit_placement

__all__ = [
    "SimulationPolicy",
    "NeverMigrate",
    "RollingHorizon",
    "MigrationBudget",
    "SimulationReport",
    "Simulator",
    "simulate",
    "standard_policies",
    "offline_reference",
]


def offline_reference(
    trace: DynamicTrace, engine=None
) -> Tuple[Optional[float], float]:
    """Hindsight comparator of a trace: ``(offline_cost, lower_bound)``.

    The effective instance (each job truncated to the part that actually
    occupied a machine) solved through the engine, plus its Observation 1.1
    bound.  Both depend only on the trace, never on the replay policy, so
    multi-policy panels compute this once and share it.
    """
    effective = trace.effective_instance()
    if effective.n == 0:
        return None, 0.0
    from ..engine import Engine, SolveRequest

    engine = engine if engine is not None else Engine()
    cost = engine.solve(
        SolveRequest(instance=effective, portfolio=False)
    ).schedule.total_busy_time
    return cost, best_lower_bound(effective)


# The arrival rules are shared with the online replay harness so pure-online
# trace replay and `extensions.online` place every arrival identically.
_PLACEMENTS: Dict[str, Callable[[ScheduleBuilder, Job], Optional[int]]] = {
    "first_fit": first_fit_placement,
    "best_fit": best_fit_placement,
}


class SimulationPolicy:
    """Base policy: place arrivals, optionally replan on a period.

    Subclasses override :meth:`replan` (called by the simulator whenever the
    trace clock crosses a multiple of :attr:`replan_period`) and may replace
    the arrival placement rule.  Policies mutate machine state only through
    the simulator's ``assign``/``unassign``/``migrate`` helpers so every
    move stays on the profile-maintained path.
    """

    name: str = "abstract"
    #: replan every this many time units; ``None`` disables replanning
    replan_period: Optional[float] = None

    def __init__(self, placement: str = "first_fit") -> None:
        try:
            self._place = _PLACEMENTS[placement]
        except KeyError:
            raise ValueError(
                f"unknown placement {placement!r}; available: {sorted(_PLACEMENTS)}"
            ) from None
        self.placement = placement

    def place(self, builder: ScheduleBuilder, job: Job) -> Optional[int]:
        """Machine index for an arriving job, or ``None`` to open a new one."""
        return self._place(builder, job)

    def replan(self, sim: "Simulator", t: float) -> int:
        """Re-optimize at time ``t``; returns the number of migrations applied."""
        return 0


class NeverMigrate(SimulationPolicy):
    """Pure online: irrevocable arrival-order placement, no replanning.

    With FirstFit placement this coincides with
    :func:`busytime.extensions.online.online_first_fit` replayed over the
    trace (and the realized cost equals that schedule's busy time when no
    job departs early).
    """

    name = "never_migrate"


class RollingHorizon(SimulationPolicy):
    """Periodic re-optimization of the live job set via the solve engine.

    Every ``period`` time units the policy builds the instance of currently
    live jobs, solves it through :class:`busytime.engine.Engine` (with the
    configured algorithm, or full policy dispatch when ``algorithm=None``)
    and migrates to the proposal — but only when the proposal's *remaining*
    busy time (coverage from the replan instant onward) beats the current
    assignment's, so adopting a replan never knowingly increases the
    realized cost.
    """

    name = "rolling_horizon"

    def __init__(
        self,
        period: float,
        algorithm: Optional[str] = "first_fit",
        portfolio: bool = False,
        placement: str = "first_fit",
    ) -> None:
        super().__init__(placement=placement)
        if period <= 0:
            raise ValueError(f"replan period must be positive, got {period}")
        self.replan_period = period
        self.algorithm = algorithm
        self.portfolio = portfolio

    # -- engine proposal ----------------------------------------------------

    def propose(self, sim: "Simulator", t: float) -> Optional[Schedule]:
        """Engine solution over the live job set (``None`` when it is empty)."""
        live = sim.live_instance(name=f"{sim.name}@t={t:g}")
        if live.n == 0:
            return None
        from ..engine import Engine, SolveRequest

        request = SolveRequest(
            instance=live,
            algorithm=self.algorithm,
            portfolio=self.portfolio,
            # The engine validates via verify_schedule: each replan is also
            # an oracle cross-check of the proposal's machine profiles.
            validate_schedule=True,
        )
        return sim.engine.solve(request).schedule

    def replan(self, sim: "Simulator", t: float) -> int:
        proposal = self.propose(sim, t)
        if proposal is None:
            return 0
        migrations = sim.plan_migrations(proposal)
        if not migrations:
            return 0
        if not self._adopt(sim, proposal, t):
            return 0
        return sim.apply_migrations(migrations)

    def _adopt(self, sim: "Simulator", proposal: Schedule, t: float) -> bool:
        """Adopt only proposals that lower the projected remaining cost."""
        t_end = sim.horizon_end
        current_future = sum(
            sim.builder.profile_of(i).covered_measure_in(t, t_end)
            for i in range(sim.builder.num_machines)
        )
        proposed_future = sum(
            m.profile.covered_measure_in(t, t_end) for m in proposal.machines
        )
        return proposed_future < current_future - 1e-9


class MigrationBudget(RollingHorizon):
    """Rolling horizon with at most ``budget`` migrations per replan.

    The engine proposal is treated as a *wish list*: candidate moves are
    ranked by their net busy-time saving — what the source machine sheds
    (:meth:`ScheduleBuilder.marginal_busy_release`) minus what the target
    gains (:meth:`ScheduleBuilder.marginal_busy_increase`) — and applied
    one at a time with a per-move feasibility check, stopping at the budget.
    Partial application of a replan can violate the proposal's machine
    packing, so unlike :class:`RollingHorizon` every move is individually
    guarded by ``fits`` and skipped (without consuming budget) when the
    target cannot host the job.
    """

    name = "migration_budget"

    def __init__(
        self,
        period: float,
        budget: int = 4,
        algorithm: Optional[str] = "first_fit",
        portfolio: bool = False,
        placement: str = "first_fit",
    ) -> None:
        super().__init__(
            period, algorithm=algorithm, portfolio=portfolio, placement=placement
        )
        if budget < 0:
            raise ValueError(f"migration budget must be non-negative, got {budget}")
        self.budget = budget

    def replan(self, sim: "Simulator", t: float) -> int:
        if self.budget == 0:
            return 0
        proposal = self.propose(sim, t)
        if proposal is None:
            return 0
        migrations = sim.plan_migrations(proposal)
        builder = sim.builder

        def net_gain(move: Tuple[Job, int]) -> float:
            job, target = move
            released = builder.marginal_busy_release(job)
            if target < builder.num_machines:
                return released - builder.marginal_busy_increase(target, job)
            # A fresh machine pays the job's whole length: never an
            # improvement, but keep the exact figure for the ranking.
            return released - job.length

        applied = 0
        for job, target in sorted(migrations, key=net_gain, reverse=True):
            if applied >= self.budget:
                break
            if net_gain((job, target)) <= 1e-9:
                continue  # no longer improving on the evolved state
            if sim.try_migrate(job, target):
                applied += 1
        return applied


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one trace replay under one policy."""

    policy: str
    trace: str
    num_events: int
    arrivals: int
    departures: int
    early_departures: int
    migrations: int
    replans: int
    machines_opened: int
    #: integrated busy time actually accrued across machines (the objective)
    realized_cost: float
    #: hindsight comparator: engine solve over the effective (truncated) jobs
    offline_cost: Optional[float]
    #: Observation 1.1 bound on the effective instance
    lower_bound: float
    oracle_checks: int
    wall_time_seconds: float
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def gap_vs_offline(self) -> Optional[float]:
        """``realized_cost / offline_cost`` (``None`` without a comparator)."""
        if self.offline_cost is None or self.offline_cost <= 0:
            return None
        return self.realized_cost / self.offline_cost

    @property
    def ratio_vs_lb(self) -> float:
        if self.lower_bound <= 0:
            return 1.0
        return self.realized_cost / self.lower_bound

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by the CLI and the benchmarks)."""
        return {
            "policy": self.policy,
            "trace": self.trace,
            "num_events": self.num_events,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "early_departures": self.early_departures,
            "migrations": self.migrations,
            "replans": self.replans,
            "machines_opened": self.machines_opened,
            "realized_cost": self.realized_cost,
            "offline_cost": self.offline_cost,
            "gap_vs_offline": self.gap_vs_offline,
            "lower_bound": self.lower_bound,
            "ratio_vs_lb": self.ratio_vs_lb,
            "oracle_checks": self.oracle_checks,
            "wall_time_seconds": self.wall_time_seconds,
            "tags": dict(self.tags),
        }


class Simulator:
    """Replay a :class:`DynamicTrace` under a :class:`SimulationPolicy`.

    The simulator owns the mutable machine state (a
    :class:`ScheduleBuilder` over the trace's full job set), the realized
    cost accounting and the oracle cross-check cadence; the policy decides
    placements and replans through the ``assign``/``unassign`` mutation
    path.  One simulator instance is single-use: construct, :meth:`run`,
    read the report.

    :meth:`run` is a thin loop over the stepwise replay core —
    :meth:`begin`, one :meth:`feed` per event, :meth:`settle` — which is
    also the engine behind *streaming* replay: :meth:`streaming` builds a
    simulator with no trace at all, and a long-lived caller (the service
    layer's session manager, :mod:`busytime.service.sessions`) feeds events
    as they arrive over the wire.  Offline and streaming replay therefore
    share every decision — placements, replan instants, migration planning,
    cost accrual — by construction, which is what the session differential
    suite pins bit-for-bit.
    """

    def __init__(
        self,
        trace: Optional[DynamicTrace],
        policy: SimulationPolicy,
        oracle_check_every: Optional[int] = 256,
        compare_offline: bool = True,
        offline: Optional[Tuple[Optional[float], float]] = None,
        engine=None,
        horizon: Optional[Tuple[float, float]] = None,
        g: Optional[int] = None,
        name: str = "",
    ) -> None:
        if trace is not None:
            trace.validate()
            jobs = tuple(e.job for e in trace.events if e.is_arrival)
            g = trace.g
            horizon = trace.horizon
            name = name or trace.name or "trace"
        else:
            # Streaming mode (see :meth:`streaming`): the job set is
            # revealed event by event, so the builder starts over an empty
            # instance and the replay horizon must be supplied up front —
            # replan scheduling anchors at its start and cost settlement
            # truncates coverage at its end, exactly as the trace's own
            # horizon does offline.
            if g is None or horizon is None:
                raise ValueError("streaming replay needs explicit g and horizon")
            jobs = ()
            name = name or "stream"
        self.trace = trace
        self.policy = policy
        self.name = name
        self.oracle_check_every = oracle_check_every
        self.compare_offline = compare_offline
        #: precomputed :func:`offline_reference` result (multi-policy panels
        #: share one); computed lazily in :meth:`settle` when absent
        self._offline = offline
        self.g = g
        full = Instance(jobs=jobs, g=g, name=name)
        self.builder = ScheduleBuilder(full, algorithm=policy.name)
        if engine is None:
            from ..engine import Engine

            engine = Engine()
        self.engine = engine
        #: exclusive upper end of the simulated clock (last event time)
        self.horizon_end = horizon[1]
        self._cost = 0.0
        self._last_accrued: List[float] = []
        self._start_time = horizon[0]
        self._clock = self._start_time
        self._migrations = 0
        self._replans = 0
        self._oracle_checks = 0
        self._early_departures = 0
        self._arrivals = 0
        self._departures = 0
        self._events_fed = 0
        self._next_replan = float("inf")
        self._began = False
        self._settled = False
        self._ran = False
        self._started_wall = 0.0

    @classmethod
    def streaming(
        cls,
        g: int,
        policy: SimulationPolicy,
        horizon: Tuple[float, float],
        oracle_check_every: Optional[int] = None,
        engine=None,
        name: str = "stream",
    ) -> "Simulator":
        """A trace-less simulator fed one event at a time (:meth:`feed`).

        ``horizon`` plays the role the trace's own horizon plays offline:
        replans fire at ``horizon[0] + k * period`` and final settlement
        truncates coverage at ``horizon[1]``.  Feeding the events of a trace
        with ``horizon == trace.horizon`` therefore reproduces the offline
        replay's decisions and realized cost exactly.  The caller is
        responsible for event validity (sessions run a
        :class:`~busytime.core.events.TraceValidator` in front); the replay
        core only assumes monotone event order.
        """
        sim = cls(
            None,
            policy,
            oracle_check_every=oracle_check_every,
            compare_offline=False,
            engine=engine,
            horizon=horizon,
            g=g,
            name=name,
        )
        sim.begin()
        return sim

    # -- machine-state helpers (the policy-facing mutation API) --------------

    def live_instance(self, name: str = "") -> Instance:
        """The instance of currently live (arrived, not departed) jobs."""
        return Instance(
            jobs=tuple(
                job
                for i in range(self.builder.num_machines)
                for job in self.builder.jobs_on(i)
            ),
            g=self.g,
            name=name or "live",
        )

    def _touch(self, machine_index: int, t: float) -> None:
        """Accrue the machine's realized busy time up to ``t``.

        Called immediately before any mutation of the machine, so the
        accrual always integrates the profile state that actually held over
        the accrued window.  Untouched machines are settled once, at the end
        of the run.
        """
        last = self._last_accrued[machine_index]
        if t > last:
            self._cost += self.builder.profile_of(machine_index).covered_measure_in(
                last, t
            )
            self._last_accrued[machine_index] = t

    def _assign(self, machine_index: Optional[int], job: Job, t: float) -> int:
        if machine_index is None or machine_index >= self.builder.num_machines:
            machine_index = self.builder.open_machine()
            self._last_accrued.append(t)
        self._touch(machine_index, t)
        self.builder.assign(machine_index, job)
        return machine_index

    def _unassign(self, job: Job, t: float) -> int:
        machine_index = self.builder.machine_of(job.id)
        self._touch(machine_index, t)
        return self.builder.unassign(job)

    def plan_migrations(self, proposal: Schedule) -> List[Tuple[Job, int]]:
        """Diff an engine proposal against the current assignment.

        Proposed machines are matched injectively onto existing machine
        indices by maximum job overlap (largest proposed machines first);
        unmatched proposed machines take over currently empty indices or
        brand-new ones.  The returned moves ``(job, target_index)`` — with
        ``target_index`` possibly one past the current machine count,
        meaning "open a fresh machine" — transform the current assignment
        into exactly the proposal when applied in full.
        """
        builder = self.builder
        current = {
            job.id: i
            for i in range(builder.num_machines)
            for job in builder.jobs_on(i)
        }
        taken: set = set()
        mapping: Dict[int, int] = {}
        ordered = sorted(proposal.machines, key=lambda m: -len(m.jobs))
        for machine in ordered:
            votes: Dict[int, int] = {}
            for job in machine.jobs:
                idx = current.get(job.id)
                if idx is not None and idx not in taken:
                    votes[idx] = votes.get(idx, 0) + 1
            if votes:
                best = max(votes, key=lambda i: (votes[i], -i))
                mapping[machine.index] = best
                taken.add(best)
        spare = [
            i
            for i in range(builder.num_machines)
            if i not in taken and not builder.jobs_on(i)
        ]
        next_fresh = builder.num_machines
        for machine in ordered:
            if machine.index in mapping:
                continue
            if spare:
                mapping[machine.index] = spare.pop(0)
            else:
                mapping[machine.index] = next_fresh
                next_fresh += 1
        moves: List[Tuple[Job, int]] = []
        for machine in proposal.machines:
            target = mapping[machine.index]
            for job in machine.jobs:
                if current[job.id] != target:
                    moves.append((job, target))
        return moves

    def apply_migrations(self, moves: Sequence[Tuple[Job, int]]) -> int:
        """Apply a full replan diff: all removals first, then all additions.

        Removing every moving job before re-adding keeps each intermediate
        machine state a subset of either the old or the new packing, so the
        builder's profiles never pass through an overloaded configuration.
        Fresh target indices (one past the machine count at planning time)
        are resolved to real machines on first use, so several moves bound
        for the same fresh machine land together.
        """
        t = self._clock
        base = self.builder.num_machines
        for job, _ in moves:
            self._unassign(job, t)
        fresh: Dict[int, int] = {}
        for job, target in moves:
            if target >= base:
                if target in fresh:
                    self._assign(fresh[target], job, t)
                else:
                    fresh[target] = self._assign(None, job, t)
            else:
                self._assign(target, job, t)
        self._migrations += len(moves)
        return len(moves)

    def try_migrate(self, job: Job, target: int) -> bool:
        """Move one job iff the target machine can host it; True on success.

        A ``target`` one past the current machine count opens a fresh
        machine.  The move is rolled back (and ``False`` returned) when the
        target cannot host the job or already is the job's machine.
        """
        t = self._clock
        source = self._unassign(job, t)
        if target >= self.builder.num_machines:
            self._assign(None, job, t)
            self._migrations += 1
            return True
        if target == source or not self.builder.fits(target, job):
            self._assign(source, job, t)
            return False
        self._assign(target, job, t)
        self._migrations += 1
        return True

    # -- oracle ---------------------------------------------------------------

    def _oracle_check(self) -> None:
        """Freeze the live sub-schedule and run the slow-path oracle on it.

        ``verify_schedule`` re-derives feasibility and busy time from the
        raw job lists and raises ``ProfileOracleMismatchError`` if any
        maintained profile drifted from the truth — the cross-check the
        whole mutation path answers to.
        """
        self.builder.freeze_partial(validate=True)
        self._oracle_checks += 1

    # -- replay ---------------------------------------------------------------

    def begin(self) -> None:
        """Arm the stepwise replay (idempotent until the first :meth:`feed`)."""
        if self._began:
            raise RuntimeError("Simulator replay already begun")
        self._began = True
        self._started_wall = time.monotonic()
        period = self.policy.replan_period
        self._next_replan = (
            self._start_time + period if period is not None else float("inf")
        )
        self._clock = self._start_time

    def feed(self, event: TraceEvent) -> None:
        """Advance the replay through one arrive/depart event.

        Exactly the per-event body of the offline loop: scheduled replans
        that fall at or before the event's instant fire first (so cost
        accrual splits at the replan mark), then the event itself is
        applied through the policy's placement or the unassign path.
        """
        if not self._began or self._settled:
            raise RuntimeError("feed() outside an active begin()/settle() window")
        self._events_fed += 1
        period = self.policy.replan_period
        # Replans fire at their scheduled instant, between the events
        # that straddle it, so cost accrual splits exactly at the mark.
        while self._next_replan <= event.time:
            self._clock = self._next_replan
            self._replans += 1
            self.policy.replan(self, self._next_replan)
            self._oracle_check()
            self._next_replan += period
        self._clock = event.time
        if event.is_arrival:
            self._arrivals += 1
            choice = self.policy.place(self.builder, event.job)
            if choice is not None and not self.builder.fits(choice, event.job):
                raise ValueError(
                    f"policy {self.policy.name} chose machine {choice}, "
                    f"which cannot host job {event.job.id}"
                )
            self._assign(choice, event.job, event.time)
        else:
            self._departures += 1
            if event.time < event.job.end:
                self._early_departures += 1
            self._unassign(event.job, event.time)
        cadence = self.oracle_check_every
        if cadence and self._events_fed % cadence == 0:
            self._oracle_check()

    def realized_cost_so_far(self) -> float:
        """Realized busy time accrued through the current clock (read-only).

        Machines whose accrual lags the clock are integrated virtually —
        no state is mutated, so this is safe to call between events.
        """
        cost = self._cost
        t = self._clock
        for i in range(self.builder.num_machines):
            last = self._last_accrued[i]
            if t > last:
                cost += self.builder.profile_of(i).covered_measure_in(last, t)
        return cost

    def live_assignment(self) -> Dict[str, int]:
        """Current ``job id -> machine index`` map for every live job."""
        return {
            job.id: i
            for i in range(self.builder.num_machines)
            for job in self.builder.jobs_on(i)
        }

    def settle(self) -> SimulationReport:
        """Close the books: final accrual to the horizon end plus the report."""
        if not self._began:
            raise RuntimeError("settle() before begin()")
        if self._settled:
            raise RuntimeError("Simulator already settled")
        self._settled = True
        # Settle every machine's outstanding coverage and close the books.
        for i in range(self.builder.num_machines):
            self._touch(i, self.horizon_end)
        self._oracle_check()

        trace = self.trace
        if self._offline is not None:
            offline_cost, lb = self._offline
        elif self.compare_offline and trace is not None:
            offline_cost, lb = offline_reference(trace, self.engine)
        elif trace is not None:
            offline_cost = None
            effective = trace.effective_instance()
            lb = best_lower_bound(effective) if effective.n else 0.0
        else:
            offline_cost = None
            lb = 0.0

        return SimulationReport(
            policy=self.policy.name,
            trace=trace.name if trace is not None else self.name,
            num_events=self._events_fed,
            arrivals=self._arrivals,
            departures=self._departures,
            early_departures=self._early_departures,
            migrations=self._migrations,
            replans=self._replans,
            machines_opened=self.builder.num_machines,
            realized_cost=self._cost,
            offline_cost=offline_cost,
            lower_bound=lb,
            oracle_checks=self._oracle_checks,
            wall_time_seconds=time.monotonic() - self._started_wall,
        )

    def run(self) -> SimulationReport:
        if self._ran:
            raise RuntimeError("Simulator instances are single-use; build a new one")
        if self.trace is None:
            raise RuntimeError("streaming simulators are driven via feed()/settle()")
        self._ran = True
        self.begin()
        for event in self.trace.events:
            self.feed(event)
        return self.settle()


def standard_policies(
    trace: DynamicTrace,
    period: Optional[float] = None,
    budget: int = 4,
    algorithm: Optional[str] = "first_fit",
) -> List[SimulationPolicy]:
    """The canonical three-policy panel for a trace.

    ``period`` defaults to an eighth of the trace's time horizon (at least
    eight replans see every workload phase without dominating the runtime).
    """
    lo, hi = trace.horizon
    if period is None:
        width = hi - lo
        period = width / 8.0 if width > 0 else 1.0
    return [
        NeverMigrate(),
        RollingHorizon(period, algorithm=algorithm),
        MigrationBudget(period, budget=budget, algorithm=algorithm),
    ]


def simulate(
    trace: DynamicTrace,
    policies: Optional[Sequence[SimulationPolicy]] = None,
    oracle_check_every: Optional[int] = 256,
    compare_offline: bool = True,
    **panel_options,
) -> List[SimulationReport]:
    """Replay ``trace`` under each policy (default: the standard panel)."""
    if policies is None:
        policies = standard_policies(trace, **panel_options)
    elif panel_options:
        raise TypeError("panel options apply only when policies is None")
    # The hindsight comparator is policy-independent: compute it once and
    # share it across the panel instead of re-solving per replay.
    offline = offline_reference(trace) if compare_offline else None
    return [
        Simulator(
            trace,
            policy,
            oracle_check_every=oracle_check_every,
            compare_offline=compare_offline,
            offline=offline,
        ).run()
        for policy in policies
    ]
