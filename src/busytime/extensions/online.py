"""Online busy-time scheduling.

In many of the paper's motivating systems (lightpath provisioning, cloud
hosts) jobs arrive over time and must be assigned to a machine *immediately
and irrevocably*, before future jobs are known.  This module provides the
online counterparts of the package's offline algorithms so the cost of
making decisions online can be measured against the offline algorithms and
the lower bounds (the competitive-ratio experiments in
``benchmarks/test_bench_online.py``).

The online model: jobs are revealed in non-decreasing order of start time
(the natural arrival order); on revelation the scheduler must pick an
existing machine that can host the job or open a new one; assignments are
never revised.  Note that the offline FirstFit of Section 2 is *not* an
online algorithm — it sorts by length, which requires knowing the whole
input — so the honest online baselines are arrival-order FirstFit / BestFit /
NextFit.

Guarantees and reference points:

* **Theorem 2.1** still upper-bounds the *offline* comparator: the measured
  competitive gap of every online scheduler here is reported against the
  offline FirstFit cost and the Observation 1.1 lower bound;
* arrival-order NextFit on proper instances coincides with the Section 3.1
  greedy (jobs arrive in start order, which is the greedy's processing
  order), inheriting its 2-approximation there;
* no online algorithm can be better than arrival-order FirstFit on *every*
  instance family — the replay harness exists to measure, not to prove.

All feasibility decisions go through :class:`busytime.core.schedule.
ScheduleBuilder` and are therefore answered by the incrementally maintained
sweep-line machine profiles (:class:`busytime.core.events.SweepProfile`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule, ScheduleBuilder

__all__ = [
    "OnlineResult",
    "first_fit_placement",
    "best_fit_placement",
    "online_first_fit",
    "online_best_fit",
    "online_next_fit",
    "replay_online",
    "ONLINE_ALGORITHMS",
]


def first_fit_placement(builder: ScheduleBuilder, job: Job) -> Optional[int]:
    """FirstFit arrival rule: lowest-indexed machine that still fits.

    Shared by :func:`online_first_fit` and the dynamic simulator's policies
    (:mod:`busytime.extensions.dynamic`), so online replay and trace replay
    place arrivals identically.
    """
    return builder.first_fitting_machine(job)


def best_fit_placement(builder: ScheduleBuilder, job: Job) -> Optional[int]:
    """BestFit arrival rule: the feasible machine whose busy time grows least.

    A new machine is opened (``None``) only when no existing machine can
    absorb the job more cheaply than its own length — the same opening rule
    as the offline BestFit baseline.  Shared with the dynamic simulator.
    """
    best_idx: Optional[int] = None
    best_increase = float("inf")
    for idx in range(builder.num_machines):
        if not builder.fits(idx, job):
            continue
        increase = builder.marginal_busy_increase(idx, job)
        if increase < best_increase:
            best_increase = increase
            best_idx = idx
    if best_idx is None or best_increase >= job.length:
        return None
    return best_idx


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an online run, including the decision trace."""

    schedule: Schedule
    decisions: Dict[int, int]  # job id -> machine index chosen at arrival


def _arrival_order(instance: Instance) -> List[Job]:
    """Arrival sequence: by start time, ties broken by job id only.

    Simultaneous arrivals must not be ordered by any other job attribute —
    ranking ties by end time would let the replay peek at interval shape to
    decide who "arrives first", which no online system can do.  The
    ``(start, id)`` key is a total order, so repeated replays of the same
    instance see the identical sequence and produce the identical decision
    trace (the dynamic simulator's trace replay relies on the same
    convention).
    """
    return sorted(instance.jobs, key=lambda j: (j.start, j.id))


def replay_online(
    instance: Instance,
    policy: Callable[[ScheduleBuilder, Job], Optional[int]],
    algorithm_name: str,
) -> OnlineResult:
    """Run an online policy over the arrival sequence of ``instance``.

    ``policy(builder, job)`` returns the index of an existing machine to use
    or ``None`` to open a new one; it must only rely on information available
    at the job's arrival (the builder's current state).
    """
    builder = ScheduleBuilder(instance, algorithm=algorithm_name)
    decisions: Dict[int, int] = {}
    for job in _arrival_order(instance):
        choice = policy(builder, job)
        if choice is not None and not builder.fits(choice, job):
            raise ValueError(
                f"online policy chose machine {choice} which cannot host job {job.id}"
            )
        if choice is None:
            choice = builder.open_machine()
        builder.assign(choice, job)
        decisions[job.id] = choice
    return OnlineResult(schedule=builder.freeze(), decisions=decisions)


def online_first_fit(instance: Instance) -> Schedule:
    """Arrival-order FirstFit: lowest-indexed machine that still fits."""
    return replay_online(instance, first_fit_placement, "online_first_fit").schedule


def online_best_fit(instance: Instance) -> Schedule:
    """Arrival-order BestFit: see :func:`best_fit_placement`."""
    return replay_online(instance, best_fit_placement, "online_best_fit").schedule


def online_next_fit(instance: Instance) -> Schedule:
    """Arrival-order NextFit: keep one open machine, move on when it is full.

    For proper interval instances this *is* the Section 3.1 greedy, so it
    inherits the 2-approximation there — the one case where an online policy
    matches the offline guarantee.
    """

    state = {"current": None}

    def policy(builder: ScheduleBuilder, job: Job) -> Optional[int]:
        current = state["current"]
        if current is not None and builder.fits(current, job):
            return current
        state["current"] = builder.num_machines  # the machine about to be opened
        return None

    return replay_online(instance, policy, "online_next_fit").schedule


ONLINE_ALGORITHMS: Dict[str, Callable[[Instance], Schedule]] = {
    "online_first_fit": online_first_fit,
    "online_best_fit": online_best_fit,
    "online_next_fit": online_next_fit,
}
