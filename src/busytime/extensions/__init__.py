"""Extensions beyond the paper's core results.

Two directions the paper itself points at (Section 1.3) plus the online
setting its applications imply:

* :mod:`busytime.extensions.flexible` — jobs with release times, due dates,
  processing times and capacity demands (the model of the cited follow-up
  work [15]), solved by the two-phase anchor-then-pack heuristic.
* :mod:`busytime.extensions.online` — arrival-order online schedulers and a
  replay harness for measuring the price of irrevocable decisions.
* :mod:`busytime.extensions.dynamic` — dynamic workloads with churn: job
  departures, rolling-horizon re-optimization through the solve engine and
  migration-budget policies, replayed over arrive/depart event traces.
* ring-topology grooming (the direction of [9]) lives with the rest of the
  optical application in :mod:`busytime.optical.ring`.
"""

from .flexible import (
    FlexibleInstance,
    FlexibleJob,
    FlexibleSchedule,
    demand_profile_peak,
    fix_start_times,
    flexible_first_fit,
    flexible_lower_bound,
)
from .dynamic import (
    MigrationBudget,
    NeverMigrate,
    RollingHorizon,
    SimulationPolicy,
    SimulationReport,
    Simulator,
    simulate,
    standard_policies,
)
from .online import (
    ONLINE_ALGORITHMS,
    OnlineResult,
    online_best_fit,
    online_first_fit,
    online_next_fit,
    replay_online,
)

__all__ = [
    "FlexibleJob",
    "FlexibleInstance",
    "FlexibleSchedule",
    "fix_start_times",
    "flexible_first_fit",
    "flexible_lower_bound",
    "demand_profile_peak",
    "OnlineResult",
    "online_first_fit",
    "online_best_fit",
    "online_next_fit",
    "replay_online",
    "ONLINE_ALGORITHMS",
    "SimulationPolicy",
    "NeverMigrate",
    "RollingHorizon",
    "MigrationBudget",
    "SimulationReport",
    "Simulator",
    "simulate",
    "standard_policies",
]
