"""busytime — minimizing total busy time in parallel (interval) scheduling.

A faithful, laptop-scale reproduction of

    M. Flammini, G. Monaco, L. Moscardelli, H. Shachnai, M. Shalom, T. Tamir,
    S. Zaks.  *Minimizing total busy time in parallel scheduling with
    application to optical networks.*  IPDPS 2009 / Theoretical Computer
    Science 411 (2010) 3553-3562.

The package provides:

* the core data model (:mod:`busytime.core`): intervals, jobs, instances,
  schedules and the Observation 1.1 lower bounds;
* the paper's algorithms (:mod:`busytime.algorithms`): FirstFit
  (4-approximation, Section 2), the NextFit greedy for proper interval
  graphs (2-approximation, Section 3.1), Bounded_Length ((2+eps), Section
  3.2), the clique algorithm (2-approximation, Appendix), plus baselines and
  an auto-dispatching portfolio;
* exact solvers for small instances (:mod:`busytime.exact`), used as OPT
  references;
* the optical-network application (:mod:`busytime.optical`): traffic
  grooming / regenerator minimisation on path networks via the Section 4
  reduction;
* instance generators (:mod:`busytime.generators`) including the Fig. 4
  adversarial family, and an experiment harness (:mod:`busytime.analysis`);
* the solve-session engine (:mod:`busytime.engine`): one request/response
  API — ``SolveRequest -> Engine -> SolveReport`` — shared by the CLI, the
  experiment harness and the examples, with per-component algorithm
  selection, portfolio execution, batch fan-out and structured reports;
* the service layer (:mod:`busytime.service`): solve-as-a-service on top
  of the engine — canonical request fingerprints (invariant under job
  relabeling and time translation), a content-addressed result cache,
  in-flight dedupe, micro-batching, and a stdlib HTTP frontend behind
  ``busytime serve`` / ``busytime submit``;
* the portfolio layer (:mod:`busytime.portfolio`): anytime racing of the
  top ranked candidates under a shared deadline (``SolveRequest(race=…,
  deadline=…)``), versioned instance features, and the ``"learned"``
  selection policy — per-algorithm cost/time regressors trained offline
  from result-store history via ``busytime train-selector``.

Quick start::

    from busytime import Engine, Instance, SolveRequest

    inst = Instance.from_intervals([(0, 3), (1, 4), (2, 6), (5, 9)], g=2)
    report = Engine().solve(SolveRequest(instance=inst))
    print(report.cost, report.num_machines, report.lower_bound)
    for decision in report.components:       # which algorithm ran where
        print(decision.component, decision.algorithm, decision.proven_ratio)

The batch path fans out across instances (optionally in a process pool)::

    reports = Engine().solve_many(requests, max_workers=4)

Individual algorithms remain available as plain functions
(``first_fit(inst) -> Schedule``) and through the registry
(:func:`get_scheduler`); :func:`auto_schedule` is a thin wrapper returning
just the engine's schedule.
"""

from .algorithms import (
    algorithm_table,
    auto_schedule,
    available_schedulers,
    best_fit,
    bounded_length,
    clique_schedule,
    first_fit,
    get_scheduler,
    machine_minimizing,
    next_fit_by_start,
    proper_greedy,
    random_assignment,
    select_algorithm,
    singleton,
)
from .core import (
    CostModel,
    Instance,
    Interval,
    Job,
    Machine,
    Schedule,
    ScheduleBuilder,
    best_lower_bound,
    combined_bound,
    connected_components,
    get_cost_model,
    parallelism_bound,
    register_objective,
    registered_objectives,
    span,
    span_bound,
    total_demand_length,
    total_length,
)
from .engine import (
    Engine,
    RequestValidationError,
    SolveReport,
    SolveRequest,
    solve,
    solve_many,
)
from .exact import branch_and_bound_optimum, brute_force_optimum, exact_optimal_cost, exact_optimum
from .optical import (
    Lightpath,
    PathNetwork,
    Traffic,
    WavelengthAssignment,
    groom,
    traffic_to_instance,
)

# Importing the portfolio package registers the "learned" selection policy;
# keep it after the engine import (it ranks through the policy registry).
from . import portfolio  # noqa: E402  isort: skip
from .portfolio import LearnedSelector, extract_features, race_candidates

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Interval",
    "Job",
    "Instance",
    "Machine",
    "Schedule",
    "ScheduleBuilder",
    "connected_components",
    "span",
    "total_length",
    "parallelism_bound",
    "span_bound",
    "combined_bound",
    "best_lower_bound",
    "total_demand_length",
    "CostModel",
    "get_cost_model",
    "register_objective",
    "registered_objectives",
    # algorithms
    "first_fit",
    "proper_greedy",
    "clique_schedule",
    "bounded_length",
    "auto_schedule",
    "select_algorithm",
    "machine_minimizing",
    "next_fit_by_start",
    "best_fit",
    "singleton",
    "random_assignment",
    "get_scheduler",
    "available_schedulers",
    "algorithm_table",
    # engine
    "Engine",
    "SolveRequest",
    "SolveReport",
    "RequestValidationError",
    "solve",
    "solve_many",
    # exact
    "exact_optimum",
    "exact_optimal_cost",
    "branch_and_bound_optimum",
    "brute_force_optimum",
    # portfolio
    "portfolio",
    "LearnedSelector",
    "extract_features",
    "race_candidates",
    # optical
    "PathNetwork",
    "Lightpath",
    "Traffic",
    "WavelengthAssignment",
    "traffic_to_instance",
    "groom",
]
