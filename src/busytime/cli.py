"""Command-line interface.

``python -m busytime.cli <command>`` (or the ``busytime`` console script once
installed) exposes the library's main flows without writing Python.  Every
scheduling command routes through the solve-session engine
(:mod:`busytime.engine`): the CLI builds a :class:`~busytime.engine.SolveRequest`
and renders the returned :class:`~busytime.engine.SolveReport`.

``generate``
    produce a synthetic instance (uniform / poisson / bursty / proper /
    clique / bounded / fig4) and write it to a JSON file.
``schedule``
    load an instance (JSON or CSV), run one of the registered algorithms and
    print a summary table; optionally write the schedule JSON.
``solve``
    batch mode: solve one or more instance JSONs (or a whole directory via
    ``--batch``) through the engine, optionally across a process pool
    (``--workers``), and write per-instance SolveReport JSONs.  With
    ``--deadline``/``--race`` each solve races the policy's top candidates
    under the shared budget (anytime mode).
``compare``
    run several algorithms on one instance and print the head-to-head table
    with lower bounds (and the exact optimum for small instances).
``groom``
    generate or load path-network traffic, assign wavelengths and report the
    regenerator / ADM / wavelength counts.
``simulate``
    replay a dynamic arrive/depart trace (generated from any of the dynamic
    trace families, or derived from an instance JSON) under the three
    standard churn policies — never-migrate, rolling-horizon, migration
    budget — and print the head-to-head report table.
``info``
    print the structural profile of an instance (class, clique number,
    bounds) and which algorithm the engine's policy would choose.
``serve``
    run the solve-as-a-service HTTP frontend (:mod:`busytime.service`):
    canonicalization, result cache, in-flight dedupe and micro-batching in
    front of the engine, on a stdlib-only JSON API.
``submit``
    post one instance to a running ``busytime serve`` (or ``busytime
    cluster``) endpoint and print (or save) the returned solve report;
    retries shed/draining answers with exponential backoff and jitter.
``cluster``
    run the sharded multi-worker topology: either spin up N in-process
    workers plus the consistent-hash router (``--workers N``), or bind
    just the router over externally started ``busytime serve`` processes
    (repeated ``--worker URL``).
``train-selector``
    fit the learned algorithm selector offline from a result store's
    history (``--store-dir``) and write the model JSON; point
    ``--selector`` (or ``BUSYTIME_SELECTOR``) at the file to activate the
    ``learned`` selection policy.

Every command accepts ``--seed`` where randomness is involved, so runs are
reproducible.  User-facing failures — a missing file, an unknown algorithm
name, malformed JSON — exit non-zero with a one-line ``busytime: error:``
message rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from . import io as bio
from .algorithms import algorithm_table, get_scheduler, select_algorithm
from .analysis import format_table
from .core.bounds import best_lower_bound, parallelism_bound, span_bound
from .core.instance import Instance
from .core.objectives import registered_objectives
from .engine import Engine, SolveRequest, available_policies
from .exact import exact_optimal_cost
from .extensions.dynamic import simulate as run_simulation
from .extensions.dynamic import standard_policies
from .generators import (
    DYNAMIC_TRACE_FAMILIES,
    trace_from_instance,
    bounded_length_instance,
    bursty_instance,
    clique_instance,
    firstfit_lower_bound_instance,
    hotspot_traffic,
    local_traffic,
    poisson_arrivals_instance,
    proper_instance,
    uniform_random_instance,
    uniform_traffic,
)
from .graphs.properties import profile_instance
from .optical import groom as groom_traffic
from .optical import traffic_to_instance

__all__ = ["main", "build_parser", "CliError"]

_DEFAULT_N = 50
_DEFAULT_SEED = 0


class CliError(Exception):
    """A user-facing CLI failure: printed as one line, exit code 2.

    Raised at the points where *user input* is interpreted (algorithm
    names, service replies), so that ``main`` never has to classify bare
    ``KeyError``/``RuntimeError`` — internal bugs of those types keep their
    tracebacks.
    """


def _resolve_scheduler(name: str):
    """`get_scheduler` with the unknown-name KeyError mapped to CliError."""
    try:
        return get_scheduler(name)
    except KeyError as exc:
        raise CliError(exc.args[0]) from None

_GENERATORS: Dict[str, Callable[..., Instance]] = {
    "uniform": lambda n, g, seed: uniform_random_instance(n, g, seed=seed),
    "poisson": lambda n, g, seed: poisson_arrivals_instance(n, g, seed=seed),
    "bursty": lambda n, g, seed: bursty_instance(n, g, seed=seed),
    "proper": lambda n, g, seed: proper_instance(n, g, seed=seed),
    "clique": lambda n, g, seed: clique_instance(n, g, seed=seed),
    "bounded": lambda n, g, seed: bounded_length_instance(n, g, seed=seed),
}

_TRAFFIC_GENERATORS = {
    "uniform": uniform_traffic,
    "hotspot": hotspot_traffic,
    "local": local_traffic,
}


def _load_instance(path: str, g: Optional[int]) -> Instance:
    if path.endswith(".csv"):
        if g is None:
            raise SystemExit("--g is required when loading a CSV job list")
        return bio.jobs_from_csv(path, g=g)
    instance = bio.load_instance(path)
    if g is not None:
        instance = instance.with_g(g)
    return instance


def _load_tariff(spec: str):
    """Resolve a ``--tariff`` value: the builtin ``tou`` shape or a JSON file.

    A file must hold a :class:`~busytime.pricing.TariffSeries` document
    (``{"breakpoints": [...], "rates": [...]}``).
    """
    from .pricing import TariffSeries

    if spec == "tou":
        from .generators import tou_tariff

        return tou_tariff()
    path = Path(spec)
    if not path.is_file():
        raise CliError(
            f"--tariff expects 'tou' or a tariff JSON file, got {spec!r}"
        )
    try:
        return TariffSeries.from_dict(json.loads(path.read_text()))
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
        raise CliError(f"could not load tariff {spec}: {exc}") from None


def _tariff_objective(args: argparse.Namespace):
    """(objective, CostModel) for a ``--tariff`` run, or (objective, None).

    ``--tariff`` implies the ``tariff_busy_time`` objective unless the user
    forced a different non-default one, which is rejected: pricing a
    ratio-preserving objective by a tariff would silently change what the
    reported numbers mean.
    """
    if not getattr(args, "tariff", None):
        return args.objective, None
    if args.objective not in ("busy_time", "tariff_busy_time"):
        raise CliError(
            f"--tariff prices solves under objective 'tariff_busy_time'; "
            f"it cannot combine with --objective {args.objective}"
        )
    from .core.objectives import CostModel

    return "tariff_busy_time", CostModel(
        objective="tariff_busy_time", tariff=_load_tariff(args.tariff)
    )


def _request_for(instance: Instance, algorithm: str, **options) -> SolveRequest:
    """Build a SolveRequest; the pseudo-name ``auto`` means policy dispatch."""
    if algorithm == "auto":
        forced = None
    else:
        _resolve_scheduler(algorithm)  # unknown names are a one-line CliError
        forced = algorithm
    return SolveRequest(instance=instance, algorithm=forced, **options)


def _apply_selector(path: Optional[str]) -> None:
    """Install a trained selector for the ``learned`` policy.

    Loads the model into this process's policy singleton *and* exports it
    via ``BUSYTIME_SELECTOR`` so pool workers (which re-import the package)
    pick it up too.  A missing or malformed file is a one-line error, not a
    silent static fallback: the user asked for this model by name.
    """
    if path is None:
        return
    import os

    from .portfolio import SELECTOR_ENV_VAR, learned_policy, load_selector

    selector_path = Path(path)
    try:
        learned_policy().set_selector(load_selector(selector_path))
    except (OSError, ValueError, KeyError) as exc:
        raise CliError(f"could not load selector {path}: {exc}") from None
    os.environ[SELECTOR_ENV_VAR] = str(selector_path.resolve())


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "fig4":
        # The Fig. 4 (Theorem 2.4) construction is fully determined by g:
        # it has exactly g*(g+1) jobs and no randomness.  Silently ignoring
        # --n/--seed used to mislead; now it is an explicit error.
        if args.n is not None or args.seed is not None:
            raise SystemExit(
                "the fig4 family is fully determined by --g (it has g*(g+1) "
                "jobs and no randomness); --n and --seed do not apply"
            )
        instance = firstfit_lower_bound_instance(max(args.g, 2))
    else:
        maker = _GENERATORS[args.family]
        n = _DEFAULT_N if args.n is None else args.n
        seed = _DEFAULT_SEED if args.seed is None else args.seed
        instance = maker(n, args.g, seed)
    bio.save_instance(instance, args.output)
    print(f"wrote {instance.n} jobs (g={instance.g}, {instance.classify()}) to {args.output}")
    return 0


def _report_row(label: str, report) -> Dict[str, object]:
    summary = report.summary()
    row = {
        "algorithm": label,
        "n": summary["n"],
        "g": summary["g"],
        "busy_time": round(summary["cost"], 3),
        "machines": summary["machines"],
        "lower_bound": round(summary["lower_bound"], 3),
        "ratio_vs_lb": (
            round(summary["ratio_vs_lb"], 3) if summary["lower_bound"] > 0 else 1.0
        ),
    }
    if report.objective != "busy_time":
        # Non-default cost models price the solve differently from the raw
        # busy time; show both so the table stays comparable.
        row["objective"] = report.objective
        row["objective_value"] = round(report.value, 3)
    return row


def _cmd_schedule(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance, args.g)
    engine = Engine()
    report = engine.solve(
        _request_for(instance, args.algorithm, objective=args.objective)
    )
    print(
        format_table(
            [_report_row(args.algorithm, report)],
            title=f"schedule for {instance.name or args.instance}",
        )
    )
    if args.output:
        bio.save_schedule(report.schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    paths: List[Path] = [Path(p) for p in args.instances]
    if args.batch:
        batch_dir = Path(args.batch)
        if not batch_dir.is_dir():
            raise SystemExit(f"--batch expects a directory, got {args.batch}")
        paths.extend(sorted(batch_dir.glob(args.glob)))
    if not paths:
        raise SystemExit("nothing to solve: pass instance files and/or --batch DIR")

    _apply_selector(args.selector)
    objective, cost_model = _tariff_objective(args)
    engine = Engine()
    requests = []
    for path in paths:
        instance = _load_instance(str(path), args.g)
        requests.append(
            _request_for(
                instance,
                args.algorithm,
                objective=objective,
                cost_model=cost_model,
                policy=args.policy,
                portfolio=not args.no_portfolio,
                time_limit=args.time_limit,
                compute_optimum=args.exact,
                race=args.race,
                deadline=args.deadline,
                tags={"file": path.name},
            )
        )
    reports = engine.solve_many(requests, max_workers=args.workers)

    rows = []
    for path, report in zip(paths, reports):
        row = _report_row(report.algorithm, report)
        row = {"file": path.name, **row}
        row["proven_ratio"] = report.proven_ratio
        if report.optimum is not None:
            row["optimum"] = round(report.optimum, 3)
        if report.race is not None:
            row["raced"] = len(report.race.candidates)
            row["decisive"] = report.race.decisive
        row["time_s"] = round(report.wall_time_seconds, 4)
        rows.append(row)
    workers_note = f", workers={args.workers}" if args.workers else ""
    print(format_table(rows, title=f"solved {len(reports)} instances{workers_note}"))

    if args.output_dir:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        used: Dict[str, int] = {}
        for path, report in zip(paths, reports):
            # Inputs from different directories may share a stem; suffix
            # duplicates instead of silently overwriting earlier reports.
            count = used.get(path.stem, 0)
            used[path.stem] = count + 1
            stem = path.stem if count == 0 else f"{path.stem}-{count + 1}"
            bio.save_solve_report(report, out_dir / f"{stem}.report.json")
        print(f"{len(reports)} reports written to {out_dir}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance, args.g)
    if args.algorithms:
        names = args.algorithms
    else:
        # The default line-up is filtered by declared capability, so
        # `compare --objective machines_plus_busy` (or a demand-carrying
        # instance file) compares the declarers instead of dying on the
        # first algorithm that never heard of the problem model.  An
        # explicit --algorithms list is taken literally and may error.
        names = [
            name
            for name in ("first_fit", "proper_greedy", "best_fit", "auto")
            if name == "auto"
            or (
                get_scheduler(name).supports_objective(args.objective)
                and (not instance.has_demands or get_scheduler(name).demand_aware)
            )
        ]
    engine = Engine()
    reports = [
        (name, engine.solve(_request_for(instance, name, objective=args.objective)))
        for name in names
    ]
    lb = reports[0][1].lower_bound
    optimum = None
    from .core.objectives import get_cost_model

    if args.exact and instance.n <= args.exact_limit:
        if get_cost_model(args.objective).preserves_busy_time_ratios:
            optimum = exact_optimal_cost(instance)
        else:
            # The exact solvers minimise busy time; under an
            # activation-priced model that number is not the model optimum
            # and would sit in the table next to a model-priced LB.
            print(
                f"note: --exact is skipped for objective {args.objective!r} "
                f"(the exact solver optimises busy time, not this cost model)"
            )
    rows = []
    for name, report in reports:
        row = {
            "algorithm": name,
            "busy_time": round(report.cost, 3),
            "machines": report.num_machines,
            "ratio_vs_lb": round(report.ratio_vs_lb, 3) if lb > 0 else 1.0,
        }
        if args.objective != "busy_time":
            # ratio_vs_lb is value/LB under the model; show the value so
            # every printed ratio is derivable from printed numbers.
            row["objective_value"] = round(report.value, 3)
        if optimum:
            row["ratio_vs_opt"] = round(report.cost / optimum, 3)
        rows.append(row)
    title = f"comparison on {instance.name or args.instance} (LB={lb:.3f}"
    title += f", OPT={optimum:.3f})" if optimum else ")"
    print(format_table(rows, title=title))
    return 0


def _cmd_groom(args: argparse.Namespace) -> int:
    if args.traffic:
        traffic = bio.load_traffic(args.traffic)
    else:
        maker = _TRAFFIC_GENERATORS[args.family]
        traffic = maker(args.nodes, args.lightpaths, args.g, seed=args.seed)
    algorithm = None
    if args.algorithm:
        algorithm = _resolve_scheduler(args.algorithm)
    assignment = groom_traffic(traffic, algorithm=algorithm)
    assignment.validate()
    lb = best_lower_bound(traffic_to_instance(traffic))
    rows = [
        {
            "lightpaths": traffic.n,
            "nodes": traffic.network.num_nodes,
            "g": traffic.g,
            "wavelengths": assignment.num_wavelengths,
            "regenerators": assignment.regenerators(),
            "adms": assignment.adms(),
            "no_grooming_regens": traffic.total_regenerator_demand(),
            "sched_lower_bound": round(lb, 1),
        }
    ]
    print(format_table(rows, title="traffic grooming (Section 4)"))
    if args.output:
        Path(args.output).write_text(
            json.dumps(
                {
                    "colors": assignment.colors,
                    "summary": assignment.summary(),
                },
                indent=2,
            )
        )
        print(f"assignment written to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.instance:
        instance = _load_instance(args.instance, args.g)
        trace = trace_from_instance(
            instance, early_departure_fraction=args.churn, seed=args.seed
        )
    else:
        maker = DYNAMIC_TRACE_FAMILIES[args.family]
        trace = maker(args.n, args.g if args.g is not None else 3, args.seed, args.churn)
    algorithm = None if args.algorithm == "auto" else args.algorithm
    if algorithm is not None:
        _resolve_scheduler(algorithm)  # unknown names are a one-line CliError
    policies = standard_policies(
        trace, period=args.period, budget=args.budget, algorithm=algorithm
    )
    reports = run_simulation(
        trace,
        policies=policies,
        oracle_check_every=args.oracle_check_every or None,
    )
    rows = []
    for report in reports:
        rows.append(
            {
                "policy": report.policy,
                "realized_cost": round(report.realized_cost, 3),
                "migrations": report.migrations,
                "replans": report.replans,
                "machines": report.machines_opened,
                "offline_cost": (
                    round(report.offline_cost, 3)
                    if report.offline_cost is not None
                    else None
                ),
                "gap_vs_offline": (
                    round(report.gap_vs_offline, 3)
                    if report.gap_vs_offline is not None
                    else None
                ),
                "oracle_checks": report.oracle_checks,
            }
        )
    title = (
        f"dynamic replay of {trace.name or 'trace'} "
        f"({trace.num_events} events, {trace.num_jobs} jobs, g={trace.g})"
    )
    print(format_table(rows, title=title))
    if args.output:
        Path(args.output).write_text(
            json.dumps([r.as_dict() for r in reports], indent=2) + "\n"
        )
        print(f"simulation reports written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance, args.g)
    profile = profile_instance(instance)
    rows = [
        {"property": "n", "value": profile.n},
        {"property": "g", "value": profile.g},
        {"property": "class", "value": instance.classify()},
        {"property": "clique number", "value": profile.clique_number},
        {"property": "connected components", "value": profile.num_components},
        {"property": "proper", "value": profile.proper},
        {"property": "clique", "value": profile.clique},
        {"property": "laminar", "value": profile.laminar},
        {"property": "length ratio", "value": round(profile.length_ratio, 3)},
        {"property": "span bound", "value": round(span_bound(instance), 3)},
        {"property": "parallelism bound", "value": round(parallelism_bound(instance), 3)},
        {"property": "best lower bound", "value": round(best_lower_bound(instance), 3)},
        {"property": "dispatcher choice", "value": select_algorithm(instance)},
    ]
    print(format_table(rows, title=f"profile of {instance.name or args.instance}"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - blocks
    # serving until interrupted; exercised end-to-end by the CI smoke step.
    import signal
    import threading

    from .service import AdmissionLimits, ResultStore, SolveService, make_server

    _apply_selector(args.selector)
    service = SolveService(
        store=ResultStore(
            capacity=args.cache_capacity,
            directory=args.store_dir,
            max_disk_entries=args.max_disk_entries,
        ),
        limits=AdmissionLimits(
            max_jobs=args.max_jobs,
            max_time_limit=args.max_time_limit,
            max_forced_jobs=args.max_forced_jobs,
        ),
        batch_size=args.batch_size,
        batch_window=args.batch_window,
        max_workers=args.workers,
        max_pending=args.max_pending,
    )
    server = make_server(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        wait_timeout=args.wait_timeout,
    )
    host, port = server.server_address[:2]
    print(f"busytime service listening on http://{host}:{port}", flush=True)

    def _drain_and_stop() -> None:
        # Graceful drain: refuse new admissions (503 + Retry-After at the
        # frontend, so cluster routers spill to replicas), let in-flight
        # solves finish within the grace window, then stop the loop.
        print("busytime service draining", flush=True)
        drained = service.drain(timeout=args.drain_grace)
        print(f"busytime service drained={drained}", flush=True)
        server.shutdown()

    def _on_sigterm(signum, frame) -> None:
        # The handler must return promptly; the drain runs on its own
        # thread while serve_forever keeps answering polls for in-flight
        # jobs until shutdown() is called.
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use): no signal hook
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:  # pragma: no cover - blocks
    # serving until interrupted; exercised end-to-end by the CI cluster smoke.
    import signal
    import threading

    from .service import LocalCluster, make_cluster_router

    router_kwargs = {
        "vnodes": args.vnodes,
        "max_worker_inflight": args.max_worker_inflight,
        "probe_interval": args.probe_interval,
        "verbose": args.verbose,
    }
    if args.worker:
        # Router-only mode over externally started `busytime serve` workers:
        # drain/shutdown is each worker's own business, the router just
        # reroutes around it.
        router = make_cluster_router(
            args.worker, host=args.host, port=args.port, **router_kwargs
        )
        host, port = router.server_address[:2]
        print(
            f"busytime cluster router listening on http://{host}:{port} "
            f"({len(args.worker)} workers)",
            flush=True,
        )
        try:
            signal.signal(
                signal.SIGTERM,
                lambda *_: threading.Thread(
                    target=router.shutdown, daemon=True
                ).start(),
            )
        except ValueError:
            pass
        try:
            router.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            router.server_close()
        return 0

    cluster = LocalCluster(
        workers=args.workers,
        host=args.host,
        store_capacity=args.cache_capacity,
        store_dir=args.store_dir,
        max_disk_entries=args.max_disk_entries,
        max_pending=args.max_pending,
        wait_timeout=args.wait_timeout,
        router_port=args.port,
        router_kwargs=router_kwargs,
    )
    host, port = cluster.router.server_address[:2]
    print(
        f"busytime cluster router listening on http://{host}:{port} "
        f"({args.workers} workers)",
        flush=True,
    )
    for index, url in enumerate(cluster.worker_urls):
        print(f"  worker {index}: {url}", flush=True)
    stopping = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stopping.set())
    except ValueError:
        pass
    try:
        while not stopping.wait(0.5):
            pass
        print("busytime cluster draining workers", flush=True)
        for service in cluster.services:
            service.drain(timeout=args.drain_grace)
    except KeyboardInterrupt:
        pass
    finally:
        cluster.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import submit_instance

    instance = _load_instance(args.instance, args.g)
    objective, cost_model = _tariff_objective(args)
    options: Dict[str, object] = {}
    if args.algorithm != "auto":
        _resolve_scheduler(args.algorithm)  # unknown names fail here, not serverside
        options["algorithm"] = args.algorithm
    if objective != "busy_time":
        options["objective"] = objective
    if cost_model is not None:
        options["cost_model"] = cost_model.to_dict()
    if args.policy:
        options["policy"] = args.policy
    if args.no_portfolio:
        options["portfolio"] = False
    if args.time_limit is not None:
        options["time_limit"] = args.time_limit
    if args.race:
        options["race"] = args.race
    if args.deadline_ms is not None:
        options["deadline_ms"] = args.deadline_ms
    instance_doc = bio.instance_to_dict(instance)
    # Pre-compute the canonical fingerprint and send it as a routing hint:
    # a cluster router then picks the shard straight from the header
    # instead of re-canonicalizing the body.  Plain `busytime serve`
    # ignores the header, so this is always safe to send.
    from .service import request_fingerprint
    from .service.frontend import _request_from_document

    try:
        fingerprint = request_fingerprint(
            _request_from_document({"instance": instance_doc, "options": options})
        )
    except (ValueError, KeyError, TypeError):
        fingerprint = None  # let the server produce the real 400
    try:
        reply = submit_instance(
            args.url,
            instance_doc,
            options=options,
            wait=not args.no_wait,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            fingerprint=fingerprint,
        )
    except RuntimeError as exc:
        raise CliError(str(exc)) from None  # the service's refusal, one line
    if reply.get("status") != "done":
        print(
            f"job {reply.get('job_id')}: {reply.get('status')}"
            + (f" ({reply['error']})" if reply.get("error") else "")
        )
        return 0 if reply.get("status") in ("queued", "running") else 1
    report = bio.solve_report_from_dict(reply["report"])
    row = _report_row(report.algorithm, report)
    row["cached"] = reply.get("cached", False)
    if report.race is not None:
        row["raced"] = len(report.race.candidates)
        row["decisive"] = report.race.decisive
    print(format_table([row], title=f"served solve of {instance.name or args.instance}"))
    if args.output:
        Path(args.output).write_text(json.dumps(reply["report"], indent=2))
        print(f"report written to {args.output}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    """Create a streaming session, feed a trace in batches, read it back."""
    from .service.frontend import SessionHTTPError, session_call

    if args.trace:
        trace = bio.load_dynamic_trace(args.trace)
    else:
        maker = DYNAMIC_TRACE_FAMILIES[args.family]
        trace = maker(args.n, args.g if args.g is not None else 3, args.seed, args.churn)
    config: Dict[str, object] = {
        "g": trace.g,
        "horizon": list(trace.horizon),
        "policy": args.policy,
        "name": trace.name,
    }
    if args.period is not None:
        config["replan_period"] = args.period
    if args.policy == "migration_budget":
        config["budget"] = args.budget
    if args.tenant != "default":
        config["tenant"] = args.tenant
    rows = [bio.trace_event_to_dict(e) for e in trace.events]
    try:
        created = session_call(args.url, "/sessions", config, retries=args.retries)
        sid = created["session_id"]
        offset = 0
        while offset < len(rows):
            chunk = rows[offset:offset + args.batch]
            try:
                ack = session_call(
                    args.url,
                    f"/sessions/{sid}/events",
                    {"events": chunk, "first_offset": offset},
                    retries=args.retries,
                )
                offset = int(ack["applied"])  # duplicates skip; ack is truth
            except SessionHTTPError as exc:
                if exc.status == 409 and "expected_offset" in exc.payload:
                    # A retried batch landed out of step (e.g. after a
                    # failover); resync to the offset the server expects.
                    offset = int(exc.payload["expected_offset"])
                    continue
                raise
        assignment = session_call(args.url, f"/sessions/{sid}/assignment")
        final = None
        if not args.keep_open:
            final = session_call(args.url, f"/sessions/{sid}/close", {})
    except (SessionHTTPError, RuntimeError) as exc:
        raise CliError(str(exc)) from None
    row: Dict[str, object] = {
        "session": sid[:12],
        "policy": args.policy,
        "events": len(rows),
        "applied": assignment["applied"],
        "machines": assignment["machines"],
        "live jobs": assignment["live_jobs"],
        "realized_cost": round(
            float((final or assignment)["realized_cost"]), 3
        ),
    }
    title = (
        f"streamed {trace.name or 'trace'} "
        f"({trace.num_events} events, g={trace.g}) to {args.url}"
    )
    print(format_table([row], title=title))
    if args.output:
        payload = {"created": created, "assignment": assignment}
        if final is not None:
            payload["final"] = final
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"session transcript written to {args.output}")
    return 0


def _cmd_train_selector(args: argparse.Namespace) -> int:
    """Fit the learned selector from a result store's disk history."""
    from .portfolio import train_from_store
    from .service import ResultStore

    store_dir = Path(args.store_dir)
    if not store_dir.is_dir():
        raise CliError(f"--store-dir expects a directory, got {args.store_dir}")
    store = ResultStore(capacity=1, directory=str(store_dir))
    import warnings as _warnings

    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        try:
            selector, stats = train_from_store(
                store,
                limit=args.limit,
                max_jobs=args.max_jobs,
                ridge_lambda=args.ridge_lambda,
                min_samples=args.min_samples,
            )
        except ValueError as exc:
            raise CliError(str(exc)) from None
    for warning in caught:
        # The skip-counter warning is operator-facing output here, not noise.
        print(f"warning: {warning.message}", file=sys.stderr)
    selector.save(args.output)
    rows = [
        {
            "algorithm": name,
            "samples": head["samples"],
        }
        for name, head in sorted(selector.heads.items())
    ]
    print(
        format_table(
            rows,
            title=(
                f"selector trained on {stats['samples']} samples from "
                f"{stats['usable_entries']} store entries "
                f"({stats['scanned']} scanned, "
                f"{stats['skipped_corrupt']} corrupt, "
                f"{stats['skipped_version']} old-version, "
                f"{stats['skipped_large']} too large)"
            ),
        )
    )
    print(f"selector written to {args.output}")
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    rows = []
    for info in algorithm_table():
        rows.append(
            {
                "name": info.name,
                "section": info.paper_section,
                "ratio": info.approximation_ratio,
                "class": info.instance_class,
                "classes": ",".join(info.instance_classes),
                "portfolio": info.portfolio_member,
                "windows": info.window_aware,
                "tariff": info.tariff_aware,
            }
        )
    print(format_table(rows, title="registered algorithms"))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="busytime",
        description="Busy-time scheduling (Flammini et al., IPDPS 2009) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic instance")
    p_gen.add_argument(
        "--family", choices=sorted(_GENERATORS) + ["fig4"], default="uniform"
    )
    p_gen.add_argument(
        "--n", type=int, default=None,
        help=f"number of jobs (default {_DEFAULT_N}; not applicable to fig4)",
    )
    p_gen.add_argument("--g", type=int, default=3)
    p_gen.add_argument(
        "--seed", type=int, default=None,
        help=f"random seed (default {_DEFAULT_SEED}; not applicable to fig4)",
    )
    p_gen.add_argument("--output", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_sched = sub.add_parser("schedule", help="run one algorithm on an instance")
    p_sched.add_argument("instance", help="instance JSON (or CSV job list with --g)")
    p_sched.add_argument("--algorithm", default="auto")
    p_sched.add_argument(
        "--objective", default="busy_time", choices=registered_objectives(),
        help="cost model to price the solve under (problem-model axis)",
    )
    p_sched.add_argument("--g", type=int, default=None)
    p_sched.add_argument("--output", default=None, help="write the schedule JSON here")
    p_sched.set_defaults(func=_cmd_schedule)

    p_solve = sub.add_parser(
        "solve", help="solve a batch of instances through the engine"
    )
    p_solve.add_argument("instances", nargs="*", help="instance JSON files")
    p_solve.add_argument(
        "--batch", default=None, help="directory of instance JSONs to solve"
    )
    p_solve.add_argument(
        "--glob", default="*.json", help="filename pattern inside --batch"
    )
    p_solve.add_argument("--algorithm", default="auto")
    p_solve.add_argument(
        "--objective", default="busy_time", choices=registered_objectives(),
        help="cost model to price the solves under (problem-model axis)",
    )
    p_solve.add_argument(
        "--tariff", default=None, metavar="SPEC",
        help="price solves under a time-varying tariff: 'tou' (builtin "
        "time-of-use day shape) or a TariffSeries JSON file; implies "
        "--objective tariff_busy_time",
    )
    p_solve.add_argument(
        "--policy", default=None, choices=available_policies(),
        help="selection policy for dispatched (auto) solves",
    )
    p_solve.add_argument(
        "--no-portfolio", action="store_true",
        help="run only the selected algorithm per component",
    )
    p_solve.add_argument("--g", type=int, default=None)
    p_solve.add_argument(
        "--workers", type=int, default=None,
        help="fan out across a process pool of this size",
    )
    p_solve.add_argument(
        "--time-limit", type=float, default=None,
        help="soft per-instance budget in seconds (dispatched solves only; "
        "ignored with a forced --algorithm)",
    )
    p_solve.add_argument(
        "--race", type=int, default=0,
        help="race the policy's top N candidates per instance (0 disables; "
        "incompatible with a forced --algorithm)",
    )
    p_solve.add_argument(
        "--deadline", type=float, default=None,
        help="shared race budget in seconds (requires --race >= 2); the "
        "best finished candidate wins when the budget runs out",
    )
    p_solve.add_argument(
        "--selector", default=None, metavar="MODEL",
        help="trained selector JSON (from `busytime train-selector`) to "
        "activate for the 'learned' policy",
    )
    p_solve.add_argument(
        "--exact", action="store_true",
        help="also compute the exact optimum for small instances",
    )
    p_solve.add_argument(
        "--output-dir", default=None, help="write one SolveReport JSON per instance"
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_cmp = sub.add_parser("compare", help="head-to-head of several algorithms")
    p_cmp.add_argument("instance")
    p_cmp.add_argument("--algorithms", nargs="*", default=None)
    p_cmp.add_argument(
        "--objective", default="busy_time", choices=registered_objectives(),
        help="cost model to price the comparison under",
    )
    p_cmp.add_argument("--g", type=int, default=None)
    p_cmp.add_argument("--exact", action="store_true", help="also compute the exact optimum")
    p_cmp.add_argument("--exact-limit", type=int, default=16)
    p_cmp.set_defaults(func=_cmd_compare)

    p_groom = sub.add_parser("groom", help="wavelength assignment on a path network")
    p_groom.add_argument("--traffic", default=None, help="traffic JSON file")
    p_groom.add_argument("--family", choices=sorted(_TRAFFIC_GENERATORS), default="uniform")
    p_groom.add_argument("--nodes", type=int, default=40)
    p_groom.add_argument("--lightpaths", type=int, default=100)
    p_groom.add_argument("--g", type=int, default=4)
    p_groom.add_argument("--seed", type=int, default=0)
    p_groom.add_argument("--algorithm", default=None)
    p_groom.add_argument("--output", default=None)
    p_groom.set_defaults(func=_cmd_groom)

    p_sim = sub.add_parser(
        "simulate", help="replay a dynamic arrive/depart trace under churn policies"
    )
    p_sim.add_argument(
        "--instance", default=None,
        help="derive the trace from this instance JSON instead of a family",
    )
    p_sim.add_argument(
        "--family", choices=sorted(DYNAMIC_TRACE_FAMILIES), default="uniform",
        help="dynamic trace family (ignored with --instance)",
    )
    p_sim.add_argument(
        "--n", type=int, default=200,
        help="number of jobs, i.e. half the event count (ignored with --instance)",
    )
    p_sim.add_argument("--g", type=int, default=None)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--churn", type=float, default=0.25,
        help="fraction of jobs that depart early (early cancellations)",
    )
    p_sim.add_argument(
        "--period", type=float, default=None,
        help="replan period for the rolling-horizon policies "
        "(default: an eighth of the trace horizon)",
    )
    p_sim.add_argument(
        "--budget", type=int, default=4,
        help="migrations per replan for the migration-budget policy",
    )
    p_sim.add_argument(
        "--algorithm", default="first_fit",
        help="registered algorithm the replanner solves with "
        "('auto' for policy dispatch)",
    )
    p_sim.add_argument(
        "--oracle-check-every", type=int, default=256,
        help="verify_schedule cross-check cadence in events (0 disables the "
        "periodic checks; replan and end-of-trace checks always run)",
    )
    p_sim.add_argument("--output", default=None, help="write the report JSONs here")
    p_sim.set_defaults(func=_cmd_simulate)

    p_info = sub.add_parser("info", help="structural profile of an instance")
    p_info.add_argument("instance")
    p_info.add_argument("--g", type=int, default=None)
    p_info.set_defaults(func=_cmd_info)

    p_alg = sub.add_parser("algorithms", help="list registered algorithms")
    p_alg.set_defaults(func=_cmd_algorithms)

    p_serve = sub.add_parser(
        "serve", help="run the solve-as-a-service HTTP frontend"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--cache-capacity", type=int, default=256,
        help="in-memory result-cache entries (LRU)",
    )
    p_serve.add_argument(
        "--store-dir", default=None,
        help="persist cached reports as JSON under this directory",
    )
    p_serve.add_argument(
        "--max-disk-entries", type=int, default=None,
        help="disk-tier budget: evict oldest cached reports beyond this "
        "many entries (default: unbounded)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=None,
        help="queue-depth cap: shed new submissions with 429 once this "
        "many solves are in flight (default: unbounded)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds SIGTERM waits for in-flight solves before stopping",
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=8,
        help="max requests gathered into one engine batch",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.01,
        help="seconds to wait while gathering a batch",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for batched solves (default: in-thread)",
    )
    p_serve.add_argument(
        "--max-jobs", type=int, default=20000,
        help="admission limit: largest accepted instance",
    )
    p_serve.add_argument(
        "--max-time-limit", type=float, default=60.0,
        help="admission limit: per-request time budget cap (seconds)",
    )
    p_serve.add_argument(
        "--max-forced-jobs", type=int, default=5000,
        help="admission limit: largest instance accepted with a forced "
        "--algorithm (such solves cannot be preempted by the time budget)",
    )
    p_serve.add_argument(
        "--wait-timeout", type=float, default=300.0,
        help="server-side cap on how long a 'wait: true' solve may block "
        "before answering 504 (seconds)",
    )
    p_serve.add_argument(
        "--selector", default=None, metavar="MODEL",
        help="trained selector JSON (from `busytime train-selector`) to "
        "activate for the 'learned' policy",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="post one instance to a running busytime service"
    )
    p_submit.add_argument("instance", help="instance JSON (or CSV job list with --g)")
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8080", help="service base URL"
    )
    p_submit.add_argument("--algorithm", default="auto")
    p_submit.add_argument(
        "--objective", default="busy_time", choices=registered_objectives(),
        help="cost model the service prices the solve under",
    )
    p_submit.add_argument(
        "--tariff", default=None, metavar="SPEC",
        help="price the solve under a time-varying tariff: 'tou' or a "
        "TariffSeries JSON file; implies --objective tariff_busy_time",
    )
    p_submit.add_argument(
        "--policy", default=None, choices=available_policies(),
        help="selection policy for dispatched (auto) solves",
    )
    p_submit.add_argument(
        "--no-portfolio", action="store_true",
        help="run only the selected algorithm per component",
    )
    p_submit.add_argument("--g", type=int, default=None)
    p_submit.add_argument(
        "--time-limit", type=float, default=None,
        help="soft per-request budget in seconds",
    )
    p_submit.add_argument(
        "--race", type=int, default=0,
        help="ask the service to race the top N candidates (0 disables)",
    )
    p_submit.add_argument(
        "--deadline-ms", type=int, default=None,
        help="race deadline budget in milliseconds (implies a default race "
        "width when --race is not given)",
    )
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of waiting for the report",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, help="client-side wait timeout"
    )
    p_submit.add_argument(
        "--retries", type=int, default=2,
        help="retry connection-refused/429/503 answers this many times "
        "with exponential backoff and jitter (0 disables)",
    )
    p_submit.add_argument(
        "--backoff", type=float, default=0.25,
        help="base backoff delay in seconds (doubles per attempt, jittered)",
    )
    p_submit.add_argument(
        "--output", default=None, help="write the solve-report JSON here"
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_cluster = sub.add_parser(
        "cluster", help="run the sharded multi-worker cluster (router + workers)"
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument(
        "--port", type=int, default=8080, help="router port (0 picks a free one)"
    )
    p_cluster.add_argument(
        "--workers", type=int, default=2,
        help="number of in-process workers to start (ignored with --worker)",
    )
    p_cluster.add_argument(
        "--worker", action="append", default=None, metavar="URL",
        help="route to this externally started `busytime serve` worker "
        "(repeatable; router-only mode)",
    )
    p_cluster.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per worker on the consistent-hash ring",
    )
    p_cluster.add_argument(
        "--max-worker-inflight", type=int, default=64,
        help="router-side per-worker in-flight cap before spilling/shedding",
    )
    p_cluster.add_argument(
        "--probe-interval", type=float, default=1.0,
        help="seconds between liveness probes of dead workers (0 disables)",
    )
    p_cluster.add_argument(
        "--cache-capacity", type=int, default=256,
        help="per-worker in-memory result-cache entries (local workers)",
    )
    p_cluster.add_argument(
        "--store-dir", default=None,
        help="per-worker disk cache root (local workers get w0/, w1/, ...)",
    )
    p_cluster.add_argument(
        "--max-disk-entries", type=int, default=None,
        help="per-worker disk-tier entry budget (local workers)",
    )
    p_cluster.add_argument(
        "--max-pending", type=int, default=None,
        help="per-worker queue-depth cap (local workers)",
    )
    p_cluster.add_argument(
        "--wait-timeout", type=float, default=300.0,
        help="per-worker cap on 'wait: true' blocking (seconds)",
    )
    p_cluster.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds SIGTERM waits for each local worker's in-flight solves",
    )
    p_cluster.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p_cluster.set_defaults(func=_cmd_cluster)

    p_session = sub.add_parser(
        "session",
        help="stream a dynamic trace through a server-side solve session",
    )
    p_session.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="service or cluster-router base url",
    )
    p_session.add_argument(
        "--trace", default=None,
        help="busytime-trace JSON file to stream (default: generate one)",
    )
    p_session.add_argument(
        "--family", choices=sorted(DYNAMIC_TRACE_FAMILIES), default="uniform",
        help="generated-trace family when --trace is not given",
    )
    p_session.add_argument("--n", type=int, default=64, help="generated-trace jobs")
    p_session.add_argument("--g", type=int, default=None)
    p_session.add_argument("--seed", type=int, default=0)
    p_session.add_argument(
        "--churn", type=float, default=0.25,
        help="generated-trace early-departure fraction",
    )
    p_session.add_argument(
        "--policy",
        choices=["never_migrate", "rolling_horizon", "migration_budget"],
        default="never_migrate",
    )
    p_session.add_argument(
        "--period", type=float, default=None,
        help="replan period (required by the replanning policies)",
    )
    p_session.add_argument(
        "--budget", type=int, default=4,
        help="migrations per replan (migration_budget only)",
    )
    p_session.add_argument(
        "--batch", type=int, default=32, help="events per POST batch"
    )
    p_session.add_argument("--tenant", default="default")
    p_session.add_argument(
        "--keep-open", action="store_true",
        help="leave the session open instead of settling it",
    )
    p_session.add_argument(
        "--retries", type=int, default=2,
        help="retry budget for 429/503/transport failures per call",
    )
    p_session.add_argument("--output", default=None, help="write the transcript JSON here")
    p_session.set_defaults(func=_cmd_session)

    p_train = sub.add_parser(
        "train-selector",
        help="fit the learned algorithm selector from result-store history",
    )
    p_train.add_argument(
        "--store-dir", required=True,
        help="result-store directory a `busytime serve --store-dir` wrote",
    )
    p_train.add_argument(
        "--output", required=True, help="write the selector model JSON here"
    )
    p_train.add_argument(
        "--limit", type=int, default=None,
        help="train on at most this many (newest) store entries",
    )
    p_train.add_argument(
        "--max-jobs", type=int, default=2000,
        help="skip stored instances larger than this (replay cost cap)",
    )
    p_train.add_argument(
        "--ridge-lambda", type=float, default=1e-3,
        help="ridge regularization strength",
    )
    p_train.add_argument(
        "--min-samples", type=int, default=3,
        help="observations an algorithm needs before it gets a trained head",
    )
    p_train.set_defaults(func=_cmd_train_selector)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (e.g. `busytime info ... | head`); the
        # truncation is deliberate, not an error worth reporting.  Point
        # the broken stdout at devnull (the Python-docs recipe) so the
        # interpreter's exit-time flush cannot fail again and turn the
        # clean exit into status 120 plus "Exception ignored" noise.
        import os

        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            os.close(devnull)
        except Exception:  # noqa: BLE001 - e.g. stdout without a real fd
            pass
        return 0
    except (CliError, OSError, ValueError) as exc:
        from .core.schedule import InfeasibleScheduleError

        if isinstance(exc, InfeasibleScheduleError):
            # The oracle rejecting a schedule is an internal correctness
            # bug (it subclasses ValueError for callers that branch on
            # feasibility) — keep the traceback, don't dress it as input.
            raise
        # User-facing failures (missing file, unknown algorithm name,
        # malformed JSON, a rejecting server) get a one-line message and a
        # non-zero exit instead of a traceback.  Internal errors — including
        # KeyError/RuntimeError bugs and ProfileOracleMismatchError — keep
        # their tracebacks; user-input call sites raise CliError instead.
        print(f"busytime: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
