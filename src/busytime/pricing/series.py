"""Step-function value objects for tariff-aware busy-time scheduling.

The busy-time objective of conf_ipps_FlamminiMMSSTZ09 prices every busy
minute identically.  Production deployments do not: electricity tariffs
and CO₂-intensity traces are piecewise-constant *series*, and a site
hosts inflexible background load that pre-occupies capacity.  This
module holds the two pure value objects the rest of the stack consumes:

:class:`TariffSeries`
    a piecewise-constant rate over time — ``rates[i]`` applies on the
    half-open band ``[breakpoints[i-1], breakpoints[i])`` with the first
    and last rates extending to ``-inf`` / ``+inf``.  ``integrate`` and
    ``coverage_cost`` use exact per-band arithmetic so a constant tariff
    degenerates bit-for-bit to the flat ``busy_rate`` path.

:class:`BackgroundLoad`
    an inflexible demand profile — integer capacity ``levels[i]`` is
    pre-occupied on ``[breakpoints[i], breakpoints[i+1]]`` and zero
    outside — charged against the site-wide capacity cap, never against
    a single machine's ``g``.

Both are stdlib-only and import nothing from the rest of ``busytime``,
so ``core`` can depend on them without cycles.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from math import isfinite
from typing import Any, Dict, Iterator, Sequence, Tuple

__all__ = ["TariffSeries", "BackgroundLoad"]


def _check_breakpoints(breakpoints: Sequence[float], owner: str) -> Tuple[float, ...]:
    out = tuple(float(b) for b in breakpoints)
    for b in out:
        if not isfinite(b):
            raise ValueError(f"{owner} breakpoints must be finite, got {b!r}")
    for lo, hi in zip(out, out[1:]):
        if not lo < hi:
            raise ValueError(
                f"{owner} breakpoints must be strictly increasing, got {lo} >= {hi}"
            )
    return out


@dataclass(frozen=True)
class TariffSeries:
    """A piecewise-constant busy-time rate.

    ``rates`` has exactly ``len(breakpoints) + 1`` entries: ``rates[0]``
    applies before the first breakpoint, ``rates[i]`` on
    ``[breakpoints[i-1], breakpoints[i])``, and ``rates[-1]`` after the
    last breakpoint.  A constant tariff is ``TariffSeries((), (r,))``.
    """

    breakpoints: Tuple[float, ...] = ()
    rates: Tuple[float, ...] = (1.0,)
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "breakpoints", _check_breakpoints(self.breakpoints, "tariff")
        )
        rates = tuple(float(r) for r in self.rates)
        object.__setattr__(self, "rates", rates)
        if len(rates) != len(self.breakpoints) + 1:
            raise ValueError(
                "tariff needs len(breakpoints) + 1 rates, got "
                f"{len(self.breakpoints)} breakpoints and {len(rates)} rates"
            )
        for r in rates:
            if not isfinite(r) or r < 0:
                raise ValueError(f"tariff rates must be finite and >= 0, got {r!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when a single rate applies everywhere (exact comparison)."""
        first = self.rates[0]
        return all(r == first for r in self.rates[1:])

    @property
    def min_rate(self) -> float:
        return min(self.rates)

    @property
    def max_rate(self) -> float:
        return max(self.rates)

    def rate_at(self, t: float) -> float:
        """The rate in force at time ``t`` (bands are closed-left)."""
        return self.rates[bisect_right(self.breakpoints, t)]

    def bands(self, lo: float, hi: float) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(band_lo, band_hi, rate)`` clipped to ``[lo, hi]``.

        Only bands of positive clipped length are produced; their union
        is exactly ``[lo, hi]`` when ``lo < hi``.
        """
        if hi <= lo:
            return
        bp = self.breakpoints
        i = bisect_right(bp, lo)
        cursor = lo
        while cursor < hi:
            band_hi = bp[i] if i < len(bp) else hi
            top = min(band_hi, hi)
            if top > cursor:
                yield cursor, top, self.rates[i]
            cursor = top
            i += 1

    def min_rate_in(self, lo: float, hi: float) -> float:
        """The minimum rate over bands intersecting the window ``[lo, hi]``."""
        if hi < lo:
            raise ValueError(f"empty window [{lo}, {hi}]")
        if hi == lo:
            return self.rate_at(lo)
        return min(rate for _, _, rate in self.bands(lo, hi))

    def integrate(self, lo: float, hi: float) -> float:
        """``∫_lo^hi rate(t) dt`` with exact per-band arithmetic."""
        if hi <= lo:
            return 0.0
        if self.is_constant:
            return self.rates[0] * (hi - lo)
        return sum(rate * (b_hi - b_lo) for b_lo, b_hi, rate in self.bands(lo, hi))

    def coverage_cost(self, profile: Any, lo: float, hi: float) -> float:
        """Price a profile's covered (busy) measure band by band.

        ``profile`` is any machine profile exposing ``covered_measure_in``
        and ``measure`` (both :class:`~busytime.core.events.SweepProfile`
        and the indexed tree do).  ``[lo, hi]`` must enclose the
        profile's busy span.  The constant fast path multiplies the
        maintained total measure — for a unit tariff that is exactly the
        flat busy-time value, bit for bit.
        """
        if self.is_constant:
            return self.rates[0] * profile.measure
        return sum(
            rate * profile.covered_measure_in(b_lo, b_hi)
            for b_lo, b_hi, rate in self.bands(lo, hi)
        )

    def shifted(self, delta: float) -> "TariffSeries":
        """The same rate function translated by ``delta`` time units."""
        if delta == 0 or not self.breakpoints:
            return self
        return TariffSeries(
            tuple(b + delta for b in self.breakpoints), self.rates, self.name
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "breakpoints": list(self.breakpoints),
            "rates": list(self.rates),
        }
        if self.name:
            doc["name"] = self.name
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TariffSeries":
        if not isinstance(doc, dict):
            raise ValueError(f"tariff document must be a mapping, got {type(doc).__name__}")
        unknown = set(doc) - {"breakpoints", "rates", "name"}
        if unknown:
            raise ValueError(f"unknown tariff keys: {sorted(unknown)}")
        return cls(
            breakpoints=tuple(doc.get("breakpoints", ())),
            rates=tuple(doc.get("rates", (1.0,))),
            name=str(doc.get("name", "")),
        )


@dataclass(frozen=True)
class BackgroundLoad:
    """Inflexible load pre-occupying site capacity.

    ``levels[i]`` units of demand occupy ``[breakpoints[i],
    breakpoints[i+1]]``; outside the breakpoint range the background is
    zero.  Levels are integers in the same units as job demands and the
    site capacity cap.
    """

    breakpoints: Tuple[float, ...]
    levels: Tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "breakpoints", _check_breakpoints(self.breakpoints, "background")
        )
        if len(self.breakpoints) < 2:
            raise ValueError("background load needs at least two breakpoints")
        levels = tuple(int(v) for v in self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) != len(self.breakpoints) - 1:
            raise ValueError(
                "background load needs len(breakpoints) - 1 levels, got "
                f"{len(self.breakpoints)} breakpoints and {len(levels)} levels"
            )
        for v in levels:
            if v < 0:
                raise ValueError(f"background levels must be >= 0, got {v}")

    @property
    def max_level(self) -> int:
        return max(self.levels, default=0)

    def level_at(self, t: float) -> int:
        """The background demand at ``t`` (closed bands: the max of the
        bands containing ``t``, matching the closed-interval semantics of
        the rest of the model)."""
        bp = self.breakpoints
        if t < bp[0] or t > bp[-1]:
            return 0
        lo = bisect_left(bp, t)
        hi = bisect_right(bp, t)
        # Bands adjacent to t: indices [lo - 1, hi) clipped to the level range.
        first = max(lo - 1, 0)
        last = min(hi, len(self.levels))
        return max(self.levels[first:last], default=0)

    def bands(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(lo, hi, level)`` for every band with positive level."""
        for i, level in enumerate(self.levels):
            if level > 0:
                yield self.breakpoints[i], self.breakpoints[i + 1], level

    def shifted(self, delta: float) -> "BackgroundLoad":
        if delta == 0:
            return self
        return BackgroundLoad(
            tuple(b + delta for b in self.breakpoints), self.levels, self.name
        )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "breakpoints": list(self.breakpoints),
            "levels": list(self.levels),
        }
        if self.name:
            doc["name"] = self.name
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BackgroundLoad":
        if not isinstance(doc, dict):
            raise ValueError(
                f"background document must be a mapping, got {type(doc).__name__}"
            )
        unknown = set(doc) - {"breakpoints", "levels", "name"}
        if unknown:
            raise ValueError(f"unknown background keys: {sorted(unknown)}")
        return cls(
            breakpoints=tuple(doc.get("breakpoints", ())),
            levels=tuple(doc.get("levels", ())),
            name=str(doc.get("name", "")),
        )
