"""Tariff-aware pricing: time-varying rates, background load, bounds.

``busytime.pricing.series`` holds the pure value objects
(:class:`TariffSeries`, :class:`BackgroundLoad`) the core model embeds;
``busytime.pricing.bounds`` holds the window/tariff-aware lower bounds.
The bounds module depends on ``busytime.core``, which itself imports the
series module, so only the series symbols are imported eagerly here —
the bounds are resolved lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from .series import BackgroundLoad, TariffSeries

__all__ = [
    "BackgroundLoad",
    "TariffSeries",
    "mandatory_part",
    "tariff_parallelism_bound",
    "band_demand_bound",
    "tariff_lower_bound",
]

_LAZY = {
    "mandatory_part",
    "tariff_parallelism_bound",
    "band_demand_bound",
    "tariff_lower_bound",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import bounds

        return getattr(bounds, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
