"""Window- and tariff-aware lower bounds on the optimal priced busy time.

The paper's Observation 1.1 bounds assume fixed intervals and a flat
rate.  Under a :class:`~busytime.pricing.series.TariffSeries` and flex
windows two generalisations stay valid:

**Tariff-weighted parallelism bound.**
    A machine busy at time ``t`` pays ``rate(t)`` and serves at most
    ``g`` capacity units, while job ``j`` consumes ``demand_j`` units
    throughout an execution interval that lies inside its window — priced
    at no less than the cheapest rate its window can reach.  Hence
    ``OPT >= sum_j demand_j * len_j * min_rate(window_j) / g``.  With a
    constant unit tariff and fixed jobs this is exactly the paper's
    ``len(J) / g``.

**Per-band peak-demand bound.**
    Every feasible placement of job ``j`` covers its *mandatory part*
    ``[deadline_j - len_j, release_j + len_j]``
    (:meth:`~busytime.core.intervals.Job.mandatory_interval`).  Where the
    mandatory demand totals ``D(t)``, at least ``ceil(D(t)/g)`` machines
    are busy, each paying ``rate(t)``, so
    ``OPT >= ∫ ceil(D(t)/g) * rate(t) dt`` — the windowed, tariff-priced
    analogue of the paper's ``N_t`` counting, which dominates the span
    bound on fixed instances (``ceil >= 1`` wherever a job runs).

Both bounds ignore the site-capacity cap, which only constrains further
(raising the true optimum), so they remain valid on capped instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.bounds import mandatory_items
from ..core.instance import Instance
from ..core.intervals import Interval, Job
from .series import TariffSeries

__all__ = [
    "mandatory_part",
    "tariff_parallelism_bound",
    "band_demand_bound",
    "tariff_lower_bound",
]


def mandatory_part(job: Job) -> Optional[Interval]:
    """The interval ``job`` occupies under every feasible placement."""
    return job.mandatory_interval()


def tariff_parallelism_bound(instance: Instance, tariff: TariffSeries) -> float:
    """``sum_j demand_j * len_j * min_rate(window_j) / g``."""
    total = 0.0
    for j in instance.jobs:
        if j.length == 0:
            continue
        rate = tariff.min_rate_in(j.window_release, j.window_deadline)
        total += j.demand * j.length * rate
    return total / instance.g


def band_demand_bound(instance: Instance, tariff: TariffSeries) -> float:
    """``∫ ceil(mandatory_demand(t) / g) * rate(t) dt``."""
    from math import ceil

    items = mandatory_items(instance)
    if not items:
        return 0.0
    delta: Dict[float, int] = {}
    for it in items:
        if it.length == 0:
            continue
        delta[it.start] = delta.get(it.start, 0) + it.demand
        delta[it.end] = delta.get(it.end, 0) - it.demand
    coords: List[float] = sorted(delta)
    total = 0.0
    running = 0
    for lo, hi in zip(coords, coords[1:]):
        running += delta[lo]
        if running > 0:
            total += ceil(running / instance.g) * tariff.integrate(lo, hi)
    return total


def tariff_lower_bound(instance: Instance, tariff: TariffSeries) -> float:
    """The strongest bound this module knows, in tariff-priced units."""
    return max(
        tariff_parallelism_bound(instance, tariff),
        band_demand_bound(instance, tariff),
    )
