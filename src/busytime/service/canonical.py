"""Canonical forms and content fingerprints for solve requests.

Two requests that describe *the same mathematical problem* should hit the
same cache line.  The busy-time objective is invariant under two request
symmetries that real traffic exercises constantly:

* **job relabeling** — job ids are names, not data; permuting them (or the
  order of the job list) permutes the schedule's machine contents but not
  its cost;
* **global time translation** — shifting every interval by the same delta
  shifts every machine's busy interval by that delta and leaves every
  length, span, overlap and load unchanged (the paper's quantities ``len``
  and ``span`` are translation invariant by definition).

:func:`canonicalize` quotients both symmetries out: jobs are translated so
the earliest start sits at 0, sorted by ``(start, end, weight, tag,
demand)`` and relabeled ``0..n-1`` (ties broken by original id, so the map
back is deterministic).  :func:`request_fingerprint` then hashes the
canonical rows together with the solve options — everything in
:meth:`~busytime.engine.request.SolveRequest.options_dict` *except* the
free-form ``tags``, which label a request without changing its answer.  The
problem-model axis is data, not a label: per-job capacity demands sit in
the canonical rows and the resolved cost model (objective name, activation
cost, busy rate, machine weight) sits in the hashed options, so two
requests differing only in pricing or demands never share a cache line.

The arithmetic is exact: canonicalization subtracts the instance's own
minimum start, so equal fingerprints mean bit-equal canonical coordinates.
(Callers constructing shifted variants in floating point should shift by
values exact in binary — integers, dyadic rationals — or the *inputs*
already differ before canonicalization sees them.)

:func:`decanonicalize_report` is the inverse step the result store needs:
it maps a report solved on the canonical instance back onto the caller's
original instance — original job objects, original ids, original time
axis.  The mapping is checked exactly (bijection onto the original job
set, bit-equal translated intervals), which makes the rebuilt schedule
feasible *by construction* given that the canonical schedule was validated
when it was produced (fresh solves validate; disk loads re-validate in
``schedule_from_dict``).  ``validate=True`` additionally reruns the full
slow-path oracle on the rebuilt schedule; the canonicalization tests do.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..core.instance import Instance
from ..core.intervals import Interval, Job
from ..core.schedule import Machine, Schedule
from ..engine.report import SolveReport
from ..engine.request import SolveRequest

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_request",
    "request_fingerprint",
    "decanonicalize_report",
]

#: Version tag baked into every fingerprint so a change to the canonical
#: document shape can never collide with fingerprints minted before it.
#: Version 2 added the problem-model axis: per-job demands in the rows and
#: the resolved cost model in the options (version-1 store entries degrade
#: to misses, as the store guarantees for unknown versions).  Version 3
#: added the portfolio-racing options (``race``/``deadline``) to the option
#: document: a raced solve and a single-dispatch solve of the same instance
#: may legitimately return different (equally feasible) schedules, so they
#: must never share a cache line.  Version 4 added the flex extension:
#: windowed instances carry 7-element rows (``rel_release``/``rel_deadline``
#: appended; window-free instances keep the 5-element rows, so their
#: canonical content is unchanged modulo the version tag), the instance's
#: ``site_capacity``/``background`` enter the document only when set, and a
#: banded tariff's breakpoints are *anchored* (translated by ``-offset``)
#: in both the hashed options and the canonical request's cost model — so
#: global time translation of instance + tariff together still hits the
#: same cache line, and the canonical solve prices bands correctly.
CANONICAL_VERSION = 4

#: Instance sizes from which :func:`canonicalize` sorts with ``np.lexsort``
#: over column arrays instead of python tuple sorting.  Same keys, same
#: ties, same floats — only the sort machinery changes, so fingerprints are
#: identical on both paths (pinned by the service tests).
CANONICAL_LEXSORT_MIN = 4096


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical quotient of an instance plus the data to undo it.

    Attributes
    ----------
    g:
        The parallelism parameter (not touched by canonicalization).
    rows:
        One ``(start, end, weight, tag, demand)`` tuple per canonical job
        ``k``, already translated (earliest start at 0) and sorted.  On
        instances with at least one genuinely windowed job every row has
        two more elements, the translated ``(release, deadline)`` of the
        job's effective window.
    id_map:
        ``id_map[k]`` is the *original* id of canonical job ``k``.
    offset:
        The translation that was subtracted: original time = canonical
        time + ``offset``.
    name:
        The original instance name (names are labels, not data, so the
        canonical instance drops them).
    site_capacity:
        The instance's site-wide capacity cap, if any (an integer count,
        translation invariant).
    background:
        The instance's inflexible background load, if any, as anchored
        ``(breakpoints, levels)`` tuples (breakpoints translated by
        ``-offset``).
    """

    g: int
    rows: Tuple[Tuple, ...]
    id_map: Tuple[int, ...]
    offset: float
    name: str
    site_capacity: Optional[int] = None
    background: Optional[Tuple[Tuple[float, ...], Tuple[int, ...]]] = None

    @property
    def instance(self) -> Instance:
        """The canonical :class:`Instance`, built lazily and cached.

        Cache *hits* never need the canonical instance — only the rows (for
        the fingerprint) and the id map (to translate the answer back) — so
        the object construction cost is deferred to actual solves.
        """
        built = self.__dict__.get("_instance")
        if built is None:
            jobs = []
            for k, row in enumerate(self.rows):
                start, end, weight, tag, demand = row[:5]
                release = deadline = None
                if len(row) == 7:
                    release, deadline = row[5], row[6]
                jobs.append(
                    Job(
                        id=k,
                        interval=Interval(start, end),
                        weight=weight,
                        tag=tag,
                        demand=demand,
                        release=release,
                        deadline=deadline,
                    )
                )
            background = None
            if self.background is not None:
                from ..pricing.series import BackgroundLoad

                background = BackgroundLoad(self.background[0], self.background[1])
            built = Instance(
                jobs=tuple(jobs),
                g=self.g,
                name="",
                site_capacity=self.site_capacity,
                background=background,
            )
            object.__setattr__(self, "_instance", built)
        return built


def _site_fields(
    instance: Instance, offset: float
) -> Tuple[Optional[int], Optional[Tuple[Tuple[float, ...], Tuple[int, ...]]]]:
    background = None
    if instance.background is not None:
        bg = instance.background
        background = (tuple(b - offset for b in bg.breakpoints), bg.levels)
    return instance.site_capacity, background


def canonicalize(instance: Instance) -> CanonicalForm:
    """The canonical form of an instance (relabeling/translation quotient)."""
    if not instance.jobs:
        site_capacity, background = _site_fields(instance, 0.0)
        return CanonicalForm(
            g=instance.g,
            rows=(),
            id_map=(),
            offset=0.0,
            name=instance.name,
            site_capacity=site_capacity,
            background=background,
        )
    jobs = instance.jobs
    offset = min(j.start for j in jobs)
    site_capacity, background = _site_fields(instance, offset)
    if instance.has_windows:
        # Windowed rows append the translated *effective* window, so a job
        # whose explicit window has zero slack canonicalizes exactly like
        # the fixed job it is (the effective window is then the interval
        # itself and the extension degenerates bit-for-bit).
        keyed = sorted(
            (
                j.start - offset,
                j.end - offset,
                j.weight,
                j.tag,
                j.demand,
                j.window_release - offset,
                j.window_deadline - offset,
                j.id,
            )
            for j in jobs
        )
        return CanonicalForm(
            g=instance.g,
            rows=tuple(row[:7] for row in keyed),
            id_map=tuple(row[7] for row in keyed),
            offset=offset,
            name=instance.name,
            site_capacity=site_capacity,
            background=background,
        )
    n = len(jobs)
    if n >= CANONICAL_LEXSORT_MIN:
        from ..core.events import _bulk_enabled

        if _bulk_enabled():
            import numpy as np

            starts = np.fromiter((j.start for j in jobs), np.float64, count=n)
            ends = np.fromiter((j.end for j in jobs), np.float64, count=n)
            starts -= offset
            ends -= offset
            weights = np.fromiter((j.weight for j in jobs), np.float64, count=n)
            demands = np.fromiter((j.demand for j in jobs), np.float64, count=n)
            ids = np.fromiter((j.id for j in jobs), np.int64, count=n)
            tags = np.array([j.tag for j in jobs])
            # Least-significant key first; the trailing id key makes the
            # order (and hence id_map) total and deterministic, exactly like
            # the tuple sort below.
            order = np.lexsort((ids, demands, tags, weights, ends, starts))
            s_list = starts.tolist()
            e_list = ends.tolist()
            rows = []
            id_map = []
            for k in order.tolist():
                j = jobs[k]
                rows.append((s_list[k], e_list[k], j.weight, j.tag, j.demand))
                id_map.append(j.id)
            return CanonicalForm(
                g=instance.g,
                rows=tuple(rows),
                id_map=tuple(id_map),
                offset=offset,
                name=instance.name,
                site_capacity=site_capacity,
                background=background,
            )
    # Sort by the canonical coordinates; ties (identical jobs up to id) break
    # by original id so the id_map is deterministic.  Identical jobs are
    # interchangeable in any schedule, so which one lands where is immaterial.
    keyed = sorted(
        (j.start - offset, j.end - offset, j.weight, j.tag, j.demand, j.id)
        for j in instance.jobs
    )
    return CanonicalForm(
        g=instance.g,
        rows=tuple(row[:5] for row in keyed),
        id_map=tuple(row[5] for row in keyed),
        offset=offset,
        name=instance.name,
        site_capacity=site_capacity,
        background=background,
    )


def _anchored_cost_model(request: SolveRequest, form: CanonicalForm):
    """The request's resolved cost model with its tariff anchored at 0.

    Returns ``None`` when nothing needs anchoring (no tariff, a constant
    tariff with no breakpoints, or a zero offset) so callers can keep the
    request's own ``cost_model`` field — including ``None`` meaning "the
    registered default" — untouched.
    """
    model = request.resolved_cost_model()
    tariff = getattr(model, "tariff", None)
    if tariff is None or not tariff.breakpoints or form.offset == 0.0:
        return None
    return replace(model, tariff=tariff.shifted(-form.offset))


def canonical_request(
    request: SolveRequest, form: Optional[CanonicalForm] = None
) -> Tuple[SolveRequest, CanonicalForm]:
    """The request rewritten onto the canonical instance, plus the form.

    ``tags`` are stripped from the canonical request (they are echo-only
    labels); the caller re-attaches its own tags on de-canonicalization.
    A banded tariff is anchored alongside the instance (breakpoints
    translated by ``-offset``) so band boundaries keep their relative
    position to the jobs.  ``form`` may carry a precomputed
    :func:`canonicalize` result.
    """
    if form is None:
        form = canonicalize(request.instance)
    anchored = _anchored_cost_model(request, form)
    if anchored is not None:
        return (
            replace(request, instance=form.instance, tags={}, cost_model=anchored),
            form,
        )
    return replace(request, instance=form.instance, tags={}), form


def request_fingerprint(
    request: SolveRequest, form: Optional[CanonicalForm] = None
) -> str:
    """Content fingerprint of a solve request (hex SHA-256).

    Equal fingerprints <=> equal canonical instances *and* equal solve
    options (minus tags).  Relabeled and globally time-shifted variants of
    the same instance therefore hash identically.  ``form`` may carry a
    precomputed :func:`canonicalize` result to avoid re-deriving it.

    Floats serialise through ``repr`` (shortest round-trip form), so
    bit-equal coordinates produce byte-equal hash inputs.
    """
    if form is None:
        form = canonicalize(request.instance)
    options = request.options_dict()
    options.pop("tags", None)
    anchored = _anchored_cost_model(request, form)
    if anchored is not None:
        options["cost_model"] = anchored.to_dict()
    doc = {
        "format": "busytime-canonical-request",
        "version": CANONICAL_VERSION,
        "g": form.g,
        "jobs": [list(row) for row in form.rows],
        "options": options,
    }
    if form.site_capacity is not None:
        doc["site_capacity"] = form.site_capacity
    if form.background is not None:
        doc["background"] = [list(form.background[0]), list(form.background[1])]
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def decanonicalize_report(
    report: SolveReport,
    form: CanonicalForm,
    original: Instance,
    tags: Optional[Mapping[str, object]] = None,
    validate: bool = False,
) -> SolveReport:
    """Map a report solved on the canonical instance back onto the original.

    Every canonical job ``k`` is replaced by the original job with id
    ``form.id_map[k]``.  The mapping is verified exactly — it must be a
    bijection onto the original job set and every original interval must be
    the canonical one translated by ``form.offset`` (bit-equal, as produced
    by :func:`canonicalize`) — so a form paired with the wrong instance
    raises instead of fabricating a schedule.  Under those checks the
    rebuilt schedule is feasible by construction whenever the canonical one
    was; ``validate=True`` reruns the full slow-path oracle anyway.

    Costs, bounds and certificates are translation/relabeling invariant and
    carry over unchanged.
    """
    by_id = {j.id: j for j in original.jobs}
    seen = 0
    machines = []
    for m in report.schedule.machines:
        jobs = []
        for canonical_job in m.jobs:
            original_job = by_id[form.id_map[canonical_job.id]]
            if original_job.demand != canonical_job.demand:
                raise ValueError(
                    f"canonical form does not match instance "
                    f"{original.name or '(unnamed)'}: job {original_job.id} "
                    f"is not job {canonical_job.id} translated by {form.offset}"
                )
            nominal_match = (
                original_job.start - form.offset == canonical_job.start
                and original_job.end - form.offset == canonical_job.end
            )
            if nominal_match:
                jobs.append(original_job)
            elif original_job.has_window:
                # A window-aware canonical solve may have slid the job; map
                # the placed interval back onto the original time axis.
                # ``placed_at`` re-validates window containment, and the
                # length is preserved by construction on both sides.
                placed = original_job.placed_at(canonical_job.start + form.offset)
                if abs(placed.length - canonical_job.length) > 1e-9 * max(
                    1.0, abs(placed.length)
                ):
                    raise ValueError(
                        f"canonical placement of job {original_job.id} changed "
                        f"its length"
                    )
                jobs.append(placed)
            else:
                raise ValueError(
                    f"canonical form does not match instance "
                    f"{original.name or '(unnamed)'}: job {original_job.id} "
                    f"is not job {canonical_job.id} translated by {form.offset}"
                )
        seen += len(jobs)
        machines.append(Machine(index=m.index, jobs=tuple(jobs)))
    if seen != original.n:
        raise ValueError(
            f"canonical schedule covers {seen} jobs, instance has {original.n}"
        )
    schedule = Schedule(
        instance=original,
        machines=tuple(machines),
        algorithm=report.schedule.algorithm,
        meta=dict(report.schedule.meta),
    )
    if validate:
        schedule.validate()
    return replace(
        report,
        schedule=schedule,
        tags=dict(tags) if tags is not None else dict(report.tags),
    )
