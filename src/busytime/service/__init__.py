"""Solve-as-a-service: canonicalization, result cache, batching frontend.

The package turns the solve engine (:mod:`busytime.engine`) into a
traffic-serving subsystem, in five layers:

* :mod:`~busytime.service.canonical` — a deterministic canonical form and
  content fingerprint for ``(instance, options)``, invariant under job
  relabeling and global time translation, plus the de-canonicalization step
  that maps cached schedules back onto the caller's own job ids;
* :mod:`~busytime.service.store` — :class:`ResultStore`, a
  content-addressed cache (in-memory LRU over an optional on-disk JSON
  tier) with hit/miss/eviction stats;
* :mod:`~busytime.service.service` — :class:`SolveService`, the
  thread-safe submit/poll/result facade that dedupes in-flight identical
  requests, micro-batches queued work (optionally across a persistent
  process pool, one future per request) and enforces admission limits;
* :mod:`~busytime.service.frontend` — the stdlib-only JSON-over-HTTP API
  (``POST /solve``, ``GET /jobs/<id>``, ``GET /stats``, ``GET /healthz``,
  ``GET /algorithms``, ``POST /warm``) behind ``busytime serve`` /
  ``busytime submit``;
* :mod:`~busytime.service.cluster` — :class:`ShardMap` +
  :class:`ClusterRouter`, the consistent-hash router that shards the
  fingerprint space over N workers (failover, load shedding, cache
  warming on topology change) behind ``busytime cluster``;
* :mod:`~busytime.service.sessions` — :class:`SessionManager` +
  :class:`Session`, stateful streaming sessions over the dynamic
  simulator's mutation path: arrive/depart event batches with idempotent
  offsets, live assignment + realized-cost reads, event-sourced
  checkpoints through the store, and per-tenant admission caps, behind
  ``POST /sessions`` and ``busytime session``.

Typical in-process use::

    from busytime import Instance, SolveRequest
    from busytime.service import SolveService

    with SolveService() as service:
        report = service.solve(SolveRequest(instance=instance))

Equivalent requests — same job set up to relabeling and a global time
shift, same options — are answered from the cache; `GET /stats` (or
:meth:`SolveService.stats`) reports the hit rate.
"""

from .canonical import (
    CanonicalForm,
    canonical_request,
    canonicalize,
    decanonicalize_report,
    request_fingerprint,
)
from .cluster import (
    ClusterRouter,
    LocalCluster,
    ShardMap,
    make_cluster_router,
)
from .frontend import make_server, serve, session_call, submit_instance
from .service import (
    AdmissionError,
    AdmissionLimits,
    JobFailedError,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceOverloadedError,
    SolveService,
)
from .sessions import (
    Session,
    SessionConfig,
    SessionConflictError,
    SessionLimitError,
    SessionLimits,
    SessionManager,
    SessionNotFoundError,
    SessionValidationError,
)
from .store import ResultStore

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_request",
    "request_fingerprint",
    "decanonicalize_report",
    "ResultStore",
    "AdmissionError",
    "AdmissionLimits",
    "JobFailedError",
    "ServiceClosedError",
    "ServiceDrainingError",
    "ServiceOverloadedError",
    "SolveService",
    "make_server",
    "serve",
    "session_call",
    "submit_instance",
    "ShardMap",
    "ClusterRouter",
    "LocalCluster",
    "make_cluster_router",
    "Session",
    "SessionConfig",
    "SessionConflictError",
    "SessionLimitError",
    "SessionLimits",
    "SessionManager",
    "SessionNotFoundError",
    "SessionValidationError",
]
