"""Sharded multi-worker cluster: consistent-hash routing over solve workers.

A :class:`ClusterRouter` is a thin stdlib HTTP frontend that owns **no**
solver pool of its own.  It partitions the canonical-fingerprint space
(:func:`~busytime.service.canonical.request_fingerprint`) into 256 shards
— the first two hex characters of the fingerprint — and assigns shards to
backend workers with a consistent-hash ring (:class:`ShardMap`).  Every
``POST /solve`` for the same canonical request therefore lands on the same
worker, so each worker's :class:`~busytime.service.store.ResultStore` sees
the full request stream for its shards and the cluster's effective cache
is the *sum* of the per-worker tiers, not N copies of the same hot set.

Routing, failure handling, and overload map onto plain HTTP:

* the routing key is the ``X-Busytime-Fingerprint`` header when the client
  sends one (``busytime submit`` does), otherwise the router canonicalizes
  the body itself;
* a worker that refuses the connection (crashed, restarting) is marked
  dead and the request is retried on the next replica in ring order —
  ``POST /solve`` is idempotent (deterministic solves, content-addressed
  cache), so replay is safe and the kill-one-worker drill loses no jobs;
* when a worker dies or revives, the shards whose primary moved are
  **warmed** on their new owner (``POST /warm``) so the reassigned traffic
  hits the new worker's memory tier instead of re-solving;
* a worker answering 429/503 (shed / draining) spills to the next replica;
  when every live worker is saturated the router sheds with its own 429 +
  ``Retry-After`` instead of queueing unboundedly;
* ``GET /healthz`` aggregates worker health and doubles as the revival
  probe — a dead worker that answers again is put back in the ring.

Job ids returned by the router are prefixed with the worker index
(``w2-job-000017``) so ``GET /jobs/<id>`` can be routed back without any
router-side job table.

Streaming sessions (:mod:`busytime.service.sessions`) route through the
same shard space, keyed on the session id instead of a fingerprint — the
router mints the id on ``POST /sessions`` so a session's whole event
stream pins to one worker.  A dead or draining owner fails over along the
ring; the successor resumes the session from the shared checkpoint store
(the handoff), and event-offset idempotency makes replaying an
unacknowledged batch safe.

:class:`LocalCluster` spins the whole topology up in one process (N
workers on loopback ports plus a router) for tests, benchmarks, and the
``busytime cluster`` command.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import re
import threading
import uuid
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from .frontend import (
    RETRY_AFTER_SECONDS,
    JsonRequestHandler,
    ThreadingHTTPServer,
    _request_from_document,
    make_server,
)
from .canonical import request_fingerprint
from .service import SolveService
from .sessions import SessionManager
from .store import ResultStore

__all__ = [
    "ShardMap",
    "ClusterRouter",
    "LocalCluster",
    "make_cluster_router",
    "SHARD_PREFIX_LEN",
    "ALL_SHARDS",
]

#: Fingerprints are sharded on their first two hex characters: 256 shards,
#: enough granularity to spread over any plausible worker count while
#: keeping warm/rebalance payloads (lists of prefixes) tiny.
SHARD_PREFIX_LEN = 2

#: Every shard id, in order ("00" .. "ff").
ALL_SHARDS: Tuple[str, ...] = tuple(f"{i:02x}" for i in range(256))

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")
_PREFIXED_JOB_RE = re.compile(r"^w(\d+)-(.+)$")


def _hash_point(key: str) -> int:
    """Position of ``key`` on the ring (first 8 bytes of its SHA-256)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class ShardMap:
    """Consistent-hash assignment of the 256 fingerprint shards to workers.

    Each worker is placed on the ring at ``vnodes`` pseudo-random points
    (hash of ``"<worker>#<k>"``); a shard is owned by the first worker at
    or after the shard's own point, and its *replica order* is the
    subsequent distinct workers — the failover sequence.  Because ring
    points depend only on worker identity, adding or removing one worker
    moves only the shards adjacent to its vnodes (~1/N of the space), which
    is exactly what keeps the per-worker caches valid across failures.

    The map itself is immutable; liveness is an argument (``alive``), so
    the router can ask "who owns shard ``a3`` among the workers currently
    up" without rebuilding anything.
    """

    def __init__(self, workers: Sequence[str], vnodes: int = 64):
        if not workers:
            raise ValueError("ShardMap needs at least one worker")
        if len(set(workers)) != len(workers):
            raise ValueError(f"duplicate workers in {list(workers)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.workers: Tuple[str, ...] = tuple(workers)
        self.vnodes = vnodes
        ring = sorted(
            (_hash_point(f"{worker}#{k}"), worker)
            for worker in self.workers
            for k in range(vnodes)
        )
        self._points: List[int] = [point for point, _ in ring]
        self._ring: List[str] = [worker for _, worker in ring]

    @staticmethod
    def shard_of(fingerprint: str) -> str:
        """The shard id (two hex chars) a fingerprint belongs to."""
        return fingerprint[:SHARD_PREFIX_LEN]

    def owners(
        self, key: str, alive: Optional[Sequence[str]] = None
    ) -> Tuple[str, ...]:
        """Distinct workers for ``key``'s shard, primary first.

        ``key`` may be a full fingerprint or a bare shard id — only its
        first :data:`SHARD_PREFIX_LEN` characters matter, so every
        fingerprint in a shard gets an identical answer.  With ``alive``
        given, workers outside that set are skipped (their successors are
        promoted), which is how shards fail over without remapping the
        rest of the ring.
        """
        wanted = set(self.workers if alive is None else alive)
        start = bisect.bisect_left(self._points, _hash_point(self.shard_of(key)))
        seen: List[str] = []
        for i in range(len(self._ring)):
            worker = self._ring[(start + i) % len(self._ring)]
            if worker in wanted and worker not in seen:
                seen.append(worker)
                if len(seen) == len(wanted):
                    break
        return tuple(seen)

    def primary(self, key: str, alive: Optional[Sequence[str]] = None) -> Optional[str]:
        """The first live owner of ``key``'s shard (``None`` if none)."""
        order = self.owners(key, alive=alive)
        return order[0] if order else None

    def table(self, alive: Optional[Sequence[str]] = None) -> Dict[str, str]:
        """``shard id -> primary owner`` for the whole space."""
        return {
            shard: owner
            for shard in ALL_SHARDS
            if (owner := self.primary(shard, alive=alive)) is not None
        }

    def shards_of(
        self, worker: str, alive: Optional[Sequence[str]] = None
    ) -> Tuple[str, ...]:
        """The shards whose primary is ``worker`` (under ``alive``)."""
        return tuple(
            shard for shard, owner in self.table(alive=alive).items() if owner == worker
        )


class WorkerUnavailableError(RuntimeError):
    """A worker could not be reached at the transport level."""


def _split_base_url(url: str) -> Tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"cluster workers must be plain http, got {url!r}")
    if not parts.hostname or parts.port is None:
        raise ValueError(f"worker url must be http://host:port, got {url!r}")
    return parts.hostname, parts.port


class _RouterHandler(JsonRequestHandler):
    """Routes cluster endpoints; all state lives on the server."""

    server: "ClusterRouter"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path == "/sessions" or path.startswith("/sessions/"):
            raw = self._read_body(self.server.max_body_bytes)
            if raw is None:
                return
            status, payload, retry_after = self.server.route_session(
                "POST", path, raw
            )
            self._send_json(status, payload, retry_after=retry_after)
            return
        if path != "/solve":
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: POST {self.path}")
            return
        raw = self._read_body(self.server.max_body_bytes)
        if raw is None:
            return
        header = self.headers.get("X-Busytime-Fingerprint", "").strip().lower()
        if _FINGERPRINT_RE.match(header):
            fingerprint = header
        else:
            # No (usable) routing hint: canonicalize here.  The router and
            # the worker compute the same fingerprint from the same body,
            # so hinted and unhinted clients agree on the shard.
            try:
                doc = json.loads(raw.decode("utf-8"))
                fingerprint = request_fingerprint(_request_from_document(doc))
            except (ValueError, KeyError, TypeError) as exc:
                self._send_error_json(400, str(exc))
                return
        status, payload, retry_after = self.server.route_solve(fingerprint, raw)
        self._send_json(status, payload, retry_after=retry_after)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            health = self.server.cluster_health()
            self._send_json(200 if health["status"] != "down" else 503, health)
        elif path == "/stats":
            self._send_json(200, self.server.cluster_stats())
        elif path == "/shards":
            self._send_json(200, self.server.shard_table())
        elif path == "/sessions" or path.startswith("/sessions/"):
            status, payload, retry_after = self.server.route_session(
                "GET", path, None
            )
            self._send_json(status, payload, retry_after=retry_after)
        elif path.startswith("/jobs/"):
            status, payload = self.server.route_job(path[len("/jobs/"):])
            self._send_json(status, payload)
        elif path == "/algorithms":
            status, payload = self.server.forward_any("GET", "/algorithms")
            self._send_json(status, payload)
        else:
            self._send_error_json(404, f"no such endpoint: GET {self.path}")


class ClusterRouter(ThreadingHTTPServer):
    """Consistent-hash router over N ``busytime serve`` workers.

    The router owns no solver pool and no cache — just the shard map, a
    per-worker liveness flag, per-worker in-flight counters (its
    backpressure signal), and small keep-alive connection pools toward the
    workers.  See the module docstring for the routing contract.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        worker_urls: Sequence[str],
        vnodes: int = 64,
        max_worker_inflight: Optional[int] = 64,
        probe_interval: Optional[float] = 1.0,
        forward_timeout: float = 330.0,
        max_body_bytes: int = 32 * 1024 * 1024,
        warm_on_rebalance: bool = True,
        warm_limit: Optional[int] = None,
        verbose: bool = False,
    ):
        if max_worker_inflight is not None and max_worker_inflight < 1:
            raise ValueError(
                f"max_worker_inflight must be >= 1 (or None), got {max_worker_inflight}"
            )
        workers = tuple(url.rstrip("/") for url in worker_urls)
        self.shard_map = ShardMap(workers, vnodes=vnodes)
        self.workers = workers
        self._addresses = {url: _split_base_url(url) for url in workers}
        self.max_worker_inflight = max_worker_inflight
        self.forward_timeout = forward_timeout
        self.max_body_bytes = max_body_bytes
        self.warm_on_rebalance = warm_on_rebalance
        self.warm_limit = warm_limit
        self.verbose = verbose
        self._lock = threading.Lock()
        self._alive: Dict[str, bool] = {url: True for url in workers}
        self._inflight: Dict[str, int] = {url: 0 for url in workers}
        self._pools: Dict[str, List[http.client.HTTPConnection]] = {
            url: [] for url in workers
        }
        self._counters = {
            "routed": 0,
            "session_routes": 0,
            "failovers": 0,
            "shed": 0,
            "worker_failures": 0,
            "revived": 0,
            "warm_posts": 0,
        }
        self._stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        super().__init__(address, _RouterHandler)
        if probe_interval is not None and probe_interval > 0:
            self._probe_thread = threading.Thread(
                target=self._probe_loop,
                args=(probe_interval,),
                name="cluster-probe",
                daemon=True,
            )
            self._probe_thread.start()

    # -- liveness -------------------------------------------------------------

    def alive_workers(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(url for url in self.workers if self._alive[url])

    def mark_dead(self, url: str) -> None:
        """Take a worker out of the ring and rebalance its shards."""
        with self._lock:
            if not self._alive.get(url, False):
                return
            before = tuple(w for w in self.workers if self._alive[w])
            self._alive[url] = False
            self._counters["worker_failures"] += 1
            for conn in self._pools[url]:
                conn.close()
            self._pools[url].clear()
            after = tuple(w for w in self.workers if self._alive[w])
        self._rebalance_async(before, after)

    def mark_alive(self, url: str) -> None:
        """Return a recovered worker to the ring and warm its shards back."""
        with self._lock:
            if self._alive.get(url, True):
                return
            before = tuple(w for w in self.workers if self._alive[w])
            self._alive[url] = True
            self._counters["revived"] += 1
            after = tuple(w for w in self.workers if self._alive[w])
        self._rebalance_async(before, after)

    def _probe_loop(self, interval: float) -> None:  # pragma: no cover - timing
        while not self._stop.wait(interval):
            for url in self.workers:
                with self._lock:
                    dead = not self._alive[url]
                if not dead:
                    continue
                try:
                    status, _ = self._forward(url, "GET", "/healthz", timeout=2.0)
                except WorkerUnavailableError:
                    continue
                if status == 200:
                    self.mark_alive(url)

    # -- cache warming on topology change -------------------------------------

    def _rebalance_async(
        self, before: Sequence[str], after: Sequence[str]
    ) -> None:
        """Warm every shard whose primary moved, off the request path."""
        if not self.warm_on_rebalance:
            return
        old = self.shard_map.table(alive=before)
        new = self.shard_map.table(alive=after)
        moved: Dict[str, List[str]] = {}
        for shard, owner in new.items():
            if old.get(shard) != owner:
                moved.setdefault(owner, []).append(shard)
        if not moved:
            return
        thread = threading.Thread(
            target=self._warm_owners, args=(moved,), name="cluster-warm", daemon=True
        )
        thread.start()

    def _warm_owners(self, moved: Mapping[str, Sequence[str]]) -> None:
        for owner, shards in moved.items():
            body: Dict[str, object] = {"prefixes": list(shards)}
            if self.warm_limit is not None:
                body["limit"] = self.warm_limit
            try:
                self._forward(
                    owner, "POST", "/warm", body=json.dumps(body).encode("utf-8")
                )
            except WorkerUnavailableError:
                continue  # best effort: the next request re-solves instead
            with self._lock:
                self._counters["warm_posts"] += 1

    # -- transport ------------------------------------------------------------

    def _checkout(self, url: str) -> Optional[http.client.HTTPConnection]:
        with self._lock:
            pool = self._pools[url]
            return pool.pop() if pool else None

    def _checkin(self, url: str, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if self._alive.get(url, False) and len(self._pools[url]) < 8:
                self._pools[url].append(conn)
                return
        conn.close()

    def _forward(
        self,
        url: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One worker round trip; raises :class:`WorkerUnavailableError`.

        A pooled keep-alive connection may have gone stale (worker-side
        timeout); a failure on a pooled connection is retried once on a
        fresh one before the worker is declared unreachable.
        """
        host, port = self._addresses[url]
        conn = self._checkout(url)
        for fresh in (False, True) if conn is not None else (True,):
            if fresh:
                conn = http.client.HTTPConnection(
                    host, port, timeout=timeout or self.forward_timeout
                )
            elif timeout is not None and conn.sock is not None:
                # Pooled connections were dialed with forward_timeout; a
                # short-deadline probe must not inherit the long one.
                conn.sock.settimeout(timeout)
            try:
                headers = {"Content-Type": "application/json"} if body else {}
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.will_close:
                    conn.close()
                else:
                    self._checkin(url, conn)
                try:
                    payload = json.loads(data.decode("utf-8")) if data else {}
                except ValueError:
                    payload = {"error": data.decode("utf-8", "replace")}
                if not isinstance(payload, dict):
                    payload = {"result": payload}
                return response.status, payload
            except (OSError, http.client.HTTPException):
                conn.close()
        raise WorkerUnavailableError(f"worker {url} is unreachable")

    # -- routing --------------------------------------------------------------

    def route_solve(
        self, fingerprint: str, raw_body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """Forward a solve to its shard owner, failing over along the ring.

        Returns ``(status, payload, retry_after)``.  Only transport
        failures and 429/503 answers fail over; definitive answers (200s,
        400s, 413s) return verbatim — re-asking a replica cannot change
        them.  Replay after a transport failure is safe because solves are
        deterministic and cached: at worst a replica recomputes a result
        the dead primary already had.
        """
        with self._lock:
            self._counters["routed"] += 1
        saw_overload = False
        last_error = "no live worker owns this shard"
        for attempt, url in enumerate(self.shard_map.owners(fingerprint)):
            with self._lock:
                if not self._alive[url]:
                    continue
                if (
                    self.max_worker_inflight is not None
                    and self._inflight[url] >= self.max_worker_inflight
                ):
                    saw_overload = True
                    last_error = f"worker {url} is at its in-flight cap"
                    continue
                self._inflight[url] += 1
            try:
                status, payload = self._forward(url, "POST", "/solve", body=raw_body)
            except WorkerUnavailableError as exc:
                last_error = str(exc)
                self.mark_dead(url)
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            finally:
                with self._lock:
                    self._inflight[url] -= 1
            if status in (429, 503):
                # Shed or draining: spill this request to the next replica
                # rather than bouncing the client, but remember the reason.
                saw_overload = saw_overload or status == 429
                last_error = f"worker {url} answered {status}"
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            if attempt > 0 and self.verbose:  # pragma: no cover - logging
                print(f"cluster: shard {fingerprint[:2]} served by replica {url}")
            if status == 200 and "job_id" in payload:
                index = self.workers.index(url)
                payload["job_id"] = f"w{index}-{payload['job_id']}"
                payload["worker"] = index
            return status, payload, None
        if saw_overload:
            with self._lock:
                self._counters["shed"] += 1
            return (
                429,
                {"error": f"cluster is saturated; {last_error}"},
                RETRY_AFTER_SECONDS,
            )
        return 503, {"error": last_error}, RETRY_AFTER_SECONDS

    def route_session(
        self, method: str, path: str, raw_body: Optional[bytes]
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """Route a session request to its shard owner (pinned by session id).

        Sessions shard exactly like fingerprints — on the first two
        characters of the session id — so one session's whole event stream
        lands on one worker, whose in-memory :class:`SessionManager` holds
        the live simulator.  ``POST /sessions`` without a client-chosen
        ``session_id`` gets a router-generated one *before* routing, which
        is what makes the pinning possible.

        Failover is the checkpoint handoff: when the pinned owner is
        unreachable (killed worker) or draining (503), the request moves to
        the next replica in ring order, whose manager resumes the session
        from the shared checkpoint store — event-offset idempotency on the
        session makes the replay of an unacknowledged batch safe.
        Definitive answers (200/201, 400, 404, 409, 429) return verbatim:
        a per-tenant 429 in particular must not be laundered through a
        replica that has not seen the tenant's traffic.
        """
        with self._lock:
            self._counters["session_routes"] += 1
        if method == "POST" and path == "/sessions":
            try:
                doc = json.loads(raw_body.decode("utf-8")) if raw_body else {}
                if not isinstance(doc, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                return 400, {"error": str(exc)}, None
            session_id = doc.get("session_id")
            if session_id is None:
                session_id = uuid.uuid4().hex
                doc["session_id"] = session_id
                raw_body = json.dumps(doc).encode("utf-8")
            elif not isinstance(session_id, str) or not session_id:
                return 400, {"error": '"session_id" must be a non-empty string'}, None
            key = session_id
        elif path == "/sessions":
            return self._aggregate_sessions()
        else:
            parts = path.split("/")
            key = parts[2] if len(parts) > 2 and parts[2] else ""
            if not key:
                return 404, {"error": f"no such endpoint: {method} {path}"}, None
        last_error = "no live worker owns this session's shard"
        for url in self.shard_map.owners(key):
            with self._lock:
                if not self._alive[url]:
                    continue
            try:
                status, payload = self._forward(url, method, path, body=raw_body)
            except WorkerUnavailableError as exc:
                last_error = str(exc)
                self.mark_dead(url)
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            if status == 503:
                # Draining owner: hand the session over to the next replica
                # (it resumes from the shared checkpoint store).
                last_error = f"worker {url} answered {status}"
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            retry_after = RETRY_AFTER_SECONDS if status == 429 else None
            return status, payload, retry_after
        return 503, {"error": last_error}, RETRY_AFTER_SECONDS

    def _aggregate_sessions(self) -> Tuple[int, Dict[str, object], Optional[float]]:
        """``GET /sessions`` cluster-wide: per-worker listings, merged totals."""
        workers = []
        totals: Dict[str, float] = {}
        for url in self.workers:
            with self._lock:
                if not self._alive[url]:
                    continue
            try:
                status, payload = self._forward(url, "GET", "/sessions", timeout=5.0)
            except WorkerUnavailableError:
                self.mark_dead(url)
                continue
            if status != 200:
                continue
            workers.append({"url": url, **payload})
            for name, value in (payload.get("stats") or {}).items():
                if isinstance(value, (int, float)):
                    totals[name] = totals.get(name, 0) + value
        return 200, {"workers": workers, "totals": totals}, None

    def route_job(self, prefixed_id: str) -> Tuple[int, Dict[str, object]]:
        """``GET /jobs/w<i>-<id>``: ask the worker that issued the id."""
        match = _PREFIXED_JOB_RE.match(prefixed_id)
        if not match or int(match.group(1)) >= len(self.workers):
            return 404, {"error": f"unknown job id: {prefixed_id}"}
        index, job_id = int(match.group(1)), match.group(2)
        url = self.workers[index]
        try:
            status, payload = self._forward(url, "GET", f"/jobs/{job_id}")
        except WorkerUnavailableError:
            self.mark_dead(url)
            return 502, {
                "error": f"worker {url} holding {prefixed_id} is unreachable"
            }
        if status == 200 and "job_id" in payload:
            payload["job_id"] = prefixed_id
            payload["worker"] = index
        return status, payload

    def forward_any(self, method: str, path: str) -> Tuple[int, Dict[str, object]]:
        """Forward a worker-agnostic read to the first live worker."""
        for url in self.workers:
            with self._lock:
                if not self._alive[url]:
                    continue
            try:
                return self._forward(url, method, path)
            except WorkerUnavailableError:
                self.mark_dead(url)
        return 503, {"error": "no live workers"}

    # -- introspection --------------------------------------------------------

    def shard_table(self) -> Dict[str, object]:
        alive = self.alive_workers()
        counts = {
            url: len(self.shard_map.shards_of(url, alive=alive)) for url in alive
        }
        return {
            "workers": list(self.workers),
            "alive": list(alive),
            "shards": len(ALL_SHARDS),
            "shards_per_worker": counts,
        }

    def cluster_health(self) -> Dict[str, object]:
        """Live worker probe + routing view; also revives answering workers."""
        workers = []
        up = 0
        for url in self.workers:
            entry: Dict[str, object] = {"url": url}
            try:
                status, payload = self._forward(url, "GET", "/healthz", timeout=2.0)
                entry["alive"] = status == 200
                entry["health"] = payload
                if status == 200:
                    up += 1
                    self.mark_alive(url)
                else:
                    self.mark_dead(url)
            except WorkerUnavailableError:
                entry["alive"] = False
                self.mark_dead(url)
            workers.append(entry)
        alive = self.alive_workers()
        for entry in workers:
            entry["shards"] = len(
                self.shard_map.shards_of(str(entry["url"]), alive=alive)
            )
        status_word = "ok" if up == len(self.workers) else "degraded" if up else "down"
        with self._lock:
            counters = dict(self._counters)
        return {"status": status_word, "workers": workers, "router": counters}

    def cluster_stats(self) -> Dict[str, object]:
        """Router counters plus a best-effort sweep of worker ``/stats``."""
        with self._lock:
            counters = dict(self._counters)
            inflight = dict(self._inflight)
        workers = []
        for url in self.workers:
            entry: Dict[str, object] = {"url": url, "inflight": inflight[url]}
            try:
                _, payload = self._forward(url, "GET", "/stats", timeout=2.0)
                entry["stats"] = payload
            except WorkerUnavailableError:
                entry["stats"] = None
            workers.append(entry)
        return {"router": counters, "workers": workers}

    # -- lifecycle ------------------------------------------------------------

    def server_close(self) -> None:
        self._stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
        with self._lock:
            for pool in self._pools.values():
                for conn in pool:
                    conn.close()
                pool.clear()
        super().server_close()


def make_cluster_router(
    worker_urls: Sequence[str],
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> ClusterRouter:
    """Bind a router over ``worker_urls`` (``port=0`` picks a free port).

    The caller owns the loop, exactly like :func:`~busytime.service.frontend.
    make_server`: ``serve_forever()`` to serve, ``shutdown()`` +
    ``server_close()`` to stop.
    """
    return ClusterRouter((host, port), worker_urls, **kwargs)


class LocalCluster:
    """An in-process cluster: N workers on loopback ports plus the router.

    Each worker gets its **own** :class:`ResultStore` (its own memory LRU
    and, when ``store_dir`` is given, its own disk subdirectory) — the
    cluster's cache capacity is the aggregate, which is the whole point of
    sharding.  Used by the cluster tests, the traffic-replay benchmark
    (experiment E20), and ``busytime cluster --local``.
    """

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        store_capacity: int = 256,
        store_dir: Optional[str] = None,
        max_disk_entries: Optional[int] = None,
        max_pending: Optional[int] = None,
        wait_timeout: float = 300.0,
        router_port: int = 0,
        router_kwargs: Optional[Mapping[str, object]] = None,
        session_limits=None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.services: List[SolveService] = []
        self.servers = []
        self._threads: List[threading.Thread] = []
        # Unlike the per-worker result caches, the session *checkpoint*
        # store is one shared tier: failover handoff requires the new owner
        # to read the old owner's last checkpoint.  With a disk directory
        # the sharing is the filesystem (document reads always hit disk);
        # memory-only clusters share the store object itself.
        self.session_store = ResultStore(
            capacity=store_capacity,
            directory=f"{store_dir}/sessions" if store_dir is not None else None,
        )
        try:
            for index in range(workers):
                directory = None
                if store_dir is not None:
                    directory = f"{store_dir}/w{index}"
                store = ResultStore(
                    capacity=store_capacity,
                    directory=directory,
                    max_disk_entries=max_disk_entries,
                )
                service = SolveService(store=store, max_pending=max_pending)
                sessions = SessionManager(
                    service, store=self.session_store, limits=session_limits
                )
                server = make_server(service, host=host, port=0,
                                     wait_timeout=wait_timeout, sessions=sessions)
                self.services.append(service)
                self.servers.append(server)
            self.worker_urls = [
                f"http://{host}:{server.server_address[1]}" for server in self.servers
            ]
            self.router = make_cluster_router(
                self.worker_urls,
                host=host,
                port=router_port,
                **dict(router_kwargs or {}),
            )
        except BaseException:
            self.close()
            raise
        self._started = True
        for index, server in enumerate(self.servers):
            thread = threading.Thread(
                target=server.serve_forever, name=f"worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        router_thread = threading.Thread(
            target=self.router.serve_forever, name="cluster-router", daemon=True
        )
        router_thread.start()
        self._threads.append(router_thread)

    @property
    def url(self) -> str:
        """The router's base url — the only address clients need."""
        return f"http://{self.router.server_address[0]}:{self.router.server_address[1]}"

    def kill_worker(self, index: int) -> None:
        """Abruptly stop one worker (no drain): the failover drill."""
        self.servers[index].shutdown()
        self.servers[index].server_close()
        self.services[index].close()

    def drain_worker(self, index: int, timeout: float = 30.0) -> bool:
        """Gracefully drain one worker, then stop serving it."""
        drained = self.services[index].drain(timeout=timeout)
        self.servers[index].shutdown()
        self.servers[index].server_close()
        return drained

    def close(self) -> None:
        # shutdown() blocks on the serve_forever loop exiting, so it must
        # only be called once the loop threads exist (not when __init__
        # aborts mid-construction).
        started = getattr(self, "_started", False)
        router = getattr(self, "router", None)
        if router is not None:
            if started:
                router.shutdown()
            router.server_close()
        for server in getattr(self, "servers", []):
            try:
                if started:
                    server.shutdown()
                server.server_close()
            except OSError:  # pragma: no cover - already killed
                pass
        for service in getattr(self, "services", []):
            try:
                service.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
