"""Content-addressed result store: LRU memory tier over an optional disk tier.

Keys are the :func:`~busytime.service.canonical.request_fingerprint` hex
digests; values are :class:`~busytime.engine.report.SolveReport` objects
solved on the *canonical* instance (de-canonicalization back onto a caller's
instance happens above the store, in :class:`~busytime.service.SolveService`).

Two tiers:

* an in-memory LRU of ``capacity`` reports (frozen dataclasses, shared by
  reference — safe because reports are immutable);
* optionally, a directory of ``<fingerprint>.json`` documents written with
  :func:`busytime.io.solve_report_to_dict` (``include_timings=False``, so
  stored bytes are deterministic).  Memory evictions never delete the disk
  copy; a later get repopulates the LRU from disk.  Unreadable or
  version-incompatible disk entries are treated as misses, never errors —
  the store is a cache, and the io-layer version check (same PR) keeps a
  newer writer's documents from being half-read by an older reader.

All operations are thread-safe (one lock; the service hits the store from
both the submit path and the batch worker).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from ..engine.report import SolveReport
from ..io import solve_report_from_dict, solve_report_to_dict

__all__ = ["ResultStore"]

_PathLike = Union[str, Path]


class ResultStore:
    """Fingerprint-keyed cache of canonical solve reports.

    Parameters
    ----------
    capacity:
        Maximum number of reports held in memory (least recently used
        evicted first).  Must be >= 1.
    directory:
        Optional on-disk tier; created if missing.  ``None`` keeps the
        store memory-only.
    """

    def __init__(self, capacity: int = 256, directory: Optional[_PathLike] = None):
        if capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, SolveReport]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._puts = 0

    # -- lookup ---------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[SolveReport]:
        """The cached report for ``fingerprint``, or ``None`` on a miss."""
        with self._lock:
            report = self._memory.get(fingerprint)
            if report is not None:
                self._memory.move_to_end(fingerprint)
                self._hits += 1
                return report
        report = self._read_disk(fingerprint)
        with self._lock:
            if report is None:
                self._misses += 1
                return None
            self._hits += 1
            self._disk_hits += 1
            self._insert(fingerprint, report)
            return report

    def peek(self, fingerprint: str) -> Optional[SolveReport]:
        """Memory-tier-only re-check after a recorded :meth:`get` miss.

        The service uses this inside its own lock to close a submit/worker
        race window: the entry may have landed between its ``get`` and now.
        A successful peek therefore *re-scores* the caller's just-recorded
        miss as a hit (the request is served from the store after all), so
        ``hits + misses`` stays equal to the number of requests looked up.
        An empty peek changes nothing — the miss already stands.
        """
        with self._lock:
            report = self._memory.get(fingerprint)
            if report is not None:
                self._memory.move_to_end(fingerprint)
                self._hits += 1
                self._misses = max(0, self._misses - 1)
            return report

    def put(self, fingerprint: str, report: SolveReport) -> None:
        """Store a canonical report under its fingerprint (both tiers).

        The memory tier is updated first: a failing disk (full, unwritable
        directory) still raises — callers count those — but never costs the
        in-memory cache its entry.
        """
        with self._lock:
            self._puts += 1
            self._insert(fingerprint, report)
        if self.directory is not None:
            doc = solve_report_to_dict(report, include_timings=False)
            path = self.directory / f"{fingerprint}.json"
            # A private temp file per writer + atomic rename: concurrent
            # writers of the same fingerprint (two service processes sharing
            # one directory) each publish a complete document, last one wins.
            handle, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{fingerprint}.", suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    stream.write(json.dumps(doc, indent=2))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _insert(self, fingerprint: str, report: SolveReport) -> None:
        """Insert into the LRU (lock held), evicting the oldest past capacity."""
        self._memory[fingerprint] = report
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._evictions += 1

    def _read_disk(self, fingerprint: str) -> Optional[SolveReport]:
        if self.directory is None:
            return None
        path = self.directory / f"{fingerprint}.json"
        try:
            return solve_report_from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError):
            # Missing, corrupt or version-incompatible entry: a miss, not an
            # error — the request simply re-solves and overwrites it.
            return None

    # -- introspection --------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        if self.directory is None:
            return False
        return (self.directory / f"{fingerprint}.json").is_file()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive); stats are kept."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "puts": self._puts,
                "size": len(self._memory),
                "capacity": self.capacity,
                "disk": str(self.directory) if self.directory else None,
            }
