"""Content-addressed result store: LRU memory tier over an optional disk tier.

Keys are the :func:`~busytime.service.canonical.request_fingerprint` hex
digests; values are :class:`~busytime.engine.report.SolveReport` objects
solved on the *canonical* instance (de-canonicalization back onto a caller's
instance happens above the store, in :class:`~busytime.service.SolveService`).

Two tiers:

* an in-memory LRU of ``capacity`` reports (frozen dataclasses, shared by
  reference — safe because reports are immutable);
* optionally, a directory of ``<fingerprint>.json`` documents written with
  :func:`busytime.io.solve_report_to_dict` (``include_timings=False``, so
  stored bytes are deterministic).  Memory evictions never delete the disk
  copy; a later get repopulates the LRU from disk.  Unreadable or
  version-incompatible disk entries are treated as misses, never errors —
  the store is a cache, and the io-layer version check keeps a newer
  writer's documents from being half-read by an older reader.

The disk tier is **shard-partitioned**: entries live under a subdirectory
named by the first ``shard_depth`` hex characters of the fingerprint
(``directory/ab/<fingerprint>.json``), which is exactly the granularity the
cluster router shards traffic at (:mod:`busytime.service.cluster`), so one
worker's cache responsibility is a set of shard directories, not a scan of
the whole tier.  Pre-partitioning flat layouts are still readable (reads
fall back to ``directory/<fingerprint>.json``), and :meth:`warm` pre-loads
a set of shard prefixes into the memory tier — the cross-worker cache
warming step a router triggers when the routing table changes.

Unlike the memory tier, the disk tier used to grow without bound; it now
takes an optional ``max_disk_entries`` budget, enforced by evicting the
oldest-written entries (and counted in :meth:`stats`).  Writes stay safe
for multiple processes sharing one directory — each writer publishes via a
private temp file and an atomic rename — and the budget is enforced by each
writer against the directory's actual contents, so co-writers converge on
the cap instead of double-counting.

Beyond solve reports, the store also carries small free-form JSON
**documents** (:meth:`put_document` / :meth:`get_document`), keyed by
caller-chosen strings.  The session layer checkpoints its event-sourced
state through this API: documents live under a separate ``docs/``
namespace on disk (two-level sharded, atomic-rename published, exempt from
the report tier's ``max_disk_entries`` budget — a cache eviction must never
eat a session checkpoint) and, for memory-only stores, in a plain dict.
When a directory is configured, document reads always go to disk so that
several workers sharing the directory observe each other's latest writes —
exactly the property cluster failover handoff relies on.

All operations are thread-safe (one lock for the memory tier and counters;
disk I/O happens outside it so a slow disk never serializes memory hits).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..engine.report import SolveReport
from ..io import _SUPPORTED_VERSIONS, solve_report_from_dict, solve_report_to_dict

__all__ = ["HistoryScan", "ResultStore"]

_PathLike = Union[str, Path]


@dataclass
class HistoryScan:
    """What a :meth:`ResultStore.scan_history` pass found — and skipped.

    The skip counters are the hardening contract for offline consumers
    (selector training): a corrupt file or a pre-v2 document costs one
    counter tick, never an exception, so mining a long-lived store that has
    seen crashes, version upgrades and co-writers always yields whatever
    usable history remains.
    """

    reports: List[Tuple[str, SolveReport]] = field(default_factory=list)
    scanned: int = 0
    skipped_corrupt: int = 0
    skipped_version: int = 0

    @property
    def skipped(self) -> int:
        return self.skipped_corrupt + self.skipped_version


class ResultStore:
    """Fingerprint-keyed cache of canonical solve reports.

    Parameters
    ----------
    capacity:
        Maximum number of reports held in memory (least recently used
        evicted first).  Must be >= 1.
    directory:
        Optional on-disk tier; created if missing.  ``None`` keeps the
        store memory-only.
    max_disk_entries:
        Optional budget for the disk tier: after a write pushes the tier
        past this many entries, the oldest-written entries are evicted
        until the budget holds again.  ``None`` (the default) leaves the
        tier unbounded, as before.
    shard_depth:
        How many leading fingerprint hex characters name the disk shard
        subdirectory (default 2: 256 shards, matching the cluster router's
        shard space).  ``0`` writes the legacy flat layout; reads always
        understand both.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: Optional[_PathLike] = None,
        max_disk_entries: Optional[int] = None,
        shard_depth: int = 2,
    ):
        if capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ValueError(
                f"max_disk_entries must be >= 1 (or None), got {max_disk_entries}"
            )
        if shard_depth < 0:
            raise ValueError(f"shard_depth must be >= 0, got {shard_depth}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.max_disk_entries = max_disk_entries
        self.shard_depth = shard_depth
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # Serializes disk-budget bookkeeping only: memory hits must never
        # wait behind another thread's disk scan.
        self._disk_lock = threading.Lock()
        self._memory: "OrderedDict[str, SolveReport]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._puts = 0
        self._disk_evictions = 0
        self._warmed = 0
        self._disk_count: Optional[int] = None  # lazily scanned
        # Free-form JSON documents (session checkpoints).  Only authoritative
        # when the store is memory-only; with a disk tier the docs/ namespace
        # is the source of truth (see get_document).
        self._documents: Dict[str, dict] = {}

    # -- lookup ---------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[SolveReport]:
        """The cached report for ``fingerprint``, or ``None`` on a miss."""
        with self._lock:
            report = self._memory.get(fingerprint)
            if report is not None:
                self._memory.move_to_end(fingerprint)
                self._hits += 1
                return report
        report = self._read_disk(fingerprint)
        with self._lock:
            if report is None:
                self._misses += 1
                return None
            self._hits += 1
            self._disk_hits += 1
            self._insert(fingerprint, report)
            return report

    def peek(self, fingerprint: str) -> Optional[SolveReport]:
        """Memory-tier-only re-check after a recorded :meth:`get` miss.

        The service uses this inside its own lock to close a submit/worker
        race window: the entry may have landed between its ``get`` and now.
        A successful peek therefore *re-scores* the caller's just-recorded
        miss as a hit (the request is served from the store after all), so
        ``hits + misses`` stays equal to the number of requests looked up.
        An empty peek changes nothing — the miss already stands.
        """
        with self._lock:
            report = self._memory.get(fingerprint)
            if report is not None:
                self._memory.move_to_end(fingerprint)
                self._hits += 1
                self._misses = max(0, self._misses - 1)
            return report

    def put(self, fingerprint: str, report: SolveReport) -> None:
        """Store a canonical report under its fingerprint (both tiers).

        The memory tier is updated first: a failing disk (full, unwritable
        directory) still raises — callers count those — but never costs the
        in-memory cache its entry.
        """
        with self._lock:
            self._puts += 1
            self._insert(fingerprint, report)
        if self.directory is None:
            return
        doc = solve_report_to_dict(report, include_timings=False)
        path = self._disk_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        # A private temp file per writer + atomic rename: concurrent
        # writers of the same fingerprint (two service processes sharing
        # one directory) each publish a complete document, last one wins.
        # The temp file lives in the destination shard directory so the
        # rename stays within one filesystem.
        handle, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(json.dumps(doc, indent=2))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if not existed:
            self._note_disk_write()

    def _insert(self, fingerprint: str, report: SolveReport) -> None:
        """Insert into the LRU (lock held), evicting the oldest past capacity."""
        self._memory[fingerprint] = report
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._evictions += 1

    # -- the disk tier --------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        if self.shard_depth and len(fingerprint) > self.shard_depth:
            return self.directory / fingerprint[: self.shard_depth] / f"{fingerprint}.json"
        return self.directory / f"{fingerprint}.json"

    def _read_disk(self, fingerprint: str) -> Optional[SolveReport]:
        if self.directory is None:
            return None
        path = self._disk_path(fingerprint)
        if not path.is_file():
            # Pre-partitioning layouts (and shard_depth=0 co-writers) put
            # the document directly under the root; honour them on reads.
            path = self.directory / f"{fingerprint}.json"
        try:
            return solve_report_from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError):
            # Missing, corrupt or version-incompatible entry: a miss, not an
            # error — the request simply re-solves and overwrites it.
            return None

    def _disk_entries(self) -> List[Tuple[float, Path]]:
        """Every disk entry as ``(mtime, path)`` (both layouts); unsorted."""
        assert self.directory is not None
        entries: List[Tuple[float, Path]] = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # concurrently evicted by a co-writer
        if self.shard_depth:
            for path in self.directory.glob("*/*.json"):
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
        return entries

    def _note_disk_write(self) -> None:
        """Count one fresh disk entry and enforce the budget when set."""
        with self._disk_lock:
            if self._disk_count is None:
                self._disk_count = len(self._disk_entries())
            else:
                self._disk_count += 1
            if (
                self.max_disk_entries is None
                or self._disk_count <= self.max_disk_entries
            ):
                return
            # Over budget: evict oldest-written first.  The listing is
            # re-derived from the directory (not the counter) so several
            # processes sharing the tier converge on the cap instead of
            # trusting their private approximations.
            entries = sorted(self._disk_entries())
            excess = len(entries) - self.max_disk_entries
            for _, path in entries[:excess]:
                try:
                    os.unlink(path)
                    self._disk_evictions += 1
                except OSError:
                    continue  # already gone (a co-writer evicted it)
            self._disk_count = min(len(entries), self.max_disk_entries)

    def disk_entries(self) -> int:
        """Number of entries currently in the disk tier (0 when memory-only)."""
        if self.directory is None:
            return 0
        with self._disk_lock:
            self._disk_count = len(self._disk_entries())
            return self._disk_count

    def warm(self, prefixes: Iterable[str], limit: Optional[int] = None) -> int:
        """Pre-load disk entries for the given shard prefixes into memory.

        This is the cross-worker cache-warming step: when the cluster's
        routing table changes (a worker died or rejoined), the shards it
        owned re-route, and their new owner calls ``warm`` so the traffic
        that is about to arrive finds the memory tier hot instead of paying
        a validating disk read per request.

        Newest-written entries load first and at most ``limit`` (default:
        the memory capacity) load in total; fingerprints already resident
        are skipped without spending a read.  Returns the number of reports
        loaded.  Unreadable entries are skipped, as everywhere else.
        """
        if self.directory is None:
            return 0
        budget = self.capacity if limit is None else limit
        wanted: List[Tuple[float, Path]] = []
        for prefix in prefixes:
            shard_dir = self.directory / prefix[: self.shard_depth or None]
            if self.shard_depth and shard_dir.is_dir():
                for path in shard_dir.glob(f"{prefix}*.json"):
                    try:
                        wanted.append((path.stat().st_mtime, path))
                    except OSError:
                        continue
            # Legacy flat entries participate too.
            for path in self.directory.glob(f"{prefix}*.json"):
                try:
                    wanted.append((path.stat().st_mtime, path))
                except OSError:
                    continue
        wanted.sort(reverse=True)
        loaded = 0
        for _, path in wanted:
            if loaded >= budget:
                break
            fingerprint = path.stem
            with self._lock:
                if fingerprint in self._memory:
                    continue
            try:
                report = solve_report_from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError):
                continue
            with self._lock:
                if fingerprint not in self._memory:
                    self._insert(fingerprint, report)
                    self._warmed += 1
                    loaded += 1
        return loaded

    def scan_history(
        self, limit: Optional[int] = None, min_version: int = 2
    ) -> HistoryScan:
        """Iterate the store's report history, newest first, never aborting.

        This is the offline-mining entry point (``busytime train-selector``
        feeds on it): every report entry in the disk tier — or, for a
        memory-only store, the memory tier — is loaded and returned as
        ``(fingerprint, report)`` pairs.  At most ``limit`` usable reports
        are returned (``None``: all of them).

        Robustness is the point of the method, not an afterthought:

        * unreadable or malformed JSON counts as ``skipped_corrupt``;
        * documents of a different format, an unknown version, or a version
          below ``min_version`` (pre-v2 documents predate the problem-model
          axis, so their implied cost semantics are not trustworthy for
          training) count as ``skipped_version``;
        * a document that parses but fails report reconstruction counts as
          ``skipped_corrupt``.

        Nothing raises; the counters in the returned :class:`HistoryScan`
        tell the caller exactly how much history was unusable.
        """
        scan = HistoryScan()
        if self.directory is None:
            with self._lock:
                snapshot = list(self._memory.items())
            for fingerprint, report in reversed(snapshot):  # newest first
                if limit is not None and len(scan.reports) >= limit:
                    break
                scan.scanned += 1
                scan.reports.append((fingerprint, report))
            return scan
        entries = sorted(self._disk_entries(), reverse=True)  # newest first
        seen: set = set()
        for _, path in entries:
            if limit is not None and len(scan.reports) >= limit:
                break
            fingerprint = path.stem
            if fingerprint in seen:
                continue  # the same entry in both flat and sharded layouts
            seen.add(fingerprint)
            scan.scanned += 1
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                scan.skipped_corrupt += 1
                continue
            version = data.get("version", 1) if isinstance(data, dict) else None
            if (
                not isinstance(data, dict)
                or data.get("format") != "busytime-solve-report"
                or not isinstance(version, int)
                or isinstance(version, bool)
                or version < min_version
                or version not in _SUPPORTED_VERSIONS["busytime-solve-report"]
            ):
                scan.skipped_version += 1
                continue
            try:
                report = solve_report_from_dict(data)
            except (ValueError, KeyError, TypeError):
                scan.skipped_corrupt += 1
                continue
            scan.reports.append((fingerprint, report))
        return scan

    # -- free-form documents (session checkpoints) ----------------------------

    _DOC_KEY_OK = staticmethod(
        lambda key: bool(key) and all(c.isalnum() or c in "-_." for c in key)
    )

    def _document_path(self, key: str) -> Path:
        assert self.directory is not None
        # Always two-level sharded under docs/: never collides with either
        # report layout and never matches the report tier's eviction globs.
        return self.directory / "docs" / key[:2] / f"{key}.json"

    def put_document(self, key: str, document: dict) -> None:
        """Durably store a JSON document under ``key`` (atomic publication).

        With a disk tier the document is published via temp-file +
        ``os.replace`` so co-readers only ever see complete checkpoints;
        memory-only stores keep a private copy in-process.  Keys are
        restricted to ``[A-Za-z0-9._-]`` so they map safely onto file names.
        """
        if not self._DOC_KEY_OK(key):
            raise ValueError(f"invalid document key: {key!r}")
        if self.directory is None:
            with self._lock:
                self._documents[key] = json.loads(json.dumps(document))
            return
        path = self._document_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(json.dumps(document, indent=2))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_document(self, key: str) -> Optional[dict]:
        """The document stored under ``key``, or ``None``.

        Disk-tier stores read the directory every time — staleness is not
        acceptable for checkpoints shared across workers, unlike for the
        content-addressed (hence immutable) report cache.
        """
        if not self._DOC_KEY_OK(key):
            return None
        if self.directory is None:
            with self._lock:
                doc = self._documents.get(key)
            return json.loads(json.dumps(doc)) if doc is not None else None
        try:
            return json.loads(self._document_path(key).read_text())
        except (OSError, ValueError):
            return None

    def delete_document(self, key: str) -> None:
        """Forget the document under ``key`` (missing keys are a no-op)."""
        if not self._DOC_KEY_OK(key):
            return
        with self._lock:
            self._documents.pop(key, None)
        if self.directory is not None:
            try:
                os.unlink(self._document_path(key))
            except OSError:
                pass

    def list_documents(self, prefix: str = "") -> List[str]:
        """Keys of all stored documents, optionally filtered by prefix."""
        keys: set = set()
        with self._lock:
            keys.update(k for k in self._documents if k.startswith(prefix))
        if self.directory is not None:
            for path in (self.directory / "docs").glob("*/*.json"):
                if path.stem.startswith(prefix):
                    keys.add(path.stem)
        return sorted(keys)

    # -- introspection --------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        if self.directory is None:
            return False
        return (
            self._disk_path(fingerprint).is_file()
            or (self.directory / f"{fingerprint}.json").is_file()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive); stats are kept."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus current occupancy."""
        # disk_entries is the count when known, None when the directory has
        # not been scanned yet (counting is deferred until a write or an
        # explicit disk_entries() call, so stats() stays cheap) and when
        # there is no disk tier at all.
        with self._disk_lock:
            disk_count = self._disk_count if self.directory else None
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "puts": self._puts,
                "size": len(self._memory),
                "capacity": self.capacity,
                "disk": str(self.directory) if self.directory else None,
                "disk_entries": disk_count,
                "disk_evictions": self._disk_evictions,
                "max_disk_entries": self.max_disk_entries,
                "warmed": self._warmed,
            }
