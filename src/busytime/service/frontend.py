"""Stdlib-only HTTP frontend for :class:`~busytime.service.SolveService`.

A deliberately small JSON API over ``http.server`` (no framework, nothing
to install):

``POST /solve``
    body ``{"instance": <busytime-instance doc>, "options": {...},
    "wait": bool}``.  Options are the :class:`~busytime.engine.SolveRequest`
    knobs (``algorithm``, ``policy``, ``objective``, ``cost_model``,
    ``portfolio``, ``time_limit``, ``compute_optimum``, ``tags``); instance
    documents may carry per-job capacity ``demand`` fields (format version
    2), and ``cost_model`` is a JSON object of
    :meth:`~busytime.core.objectives.CostModel.to_dict` shape.  Returns
    ``{"job_id", "status", ...}``; with ``"wait": true`` the response blocks
    on the solve and embeds the full ``busytime-solve-report`` document.
``GET /jobs/<id>``
    status snapshot of one submission, plus the report once done.
``GET /stats``
    service + result-store counters (hit rate, batches, dedupes, ...).
``GET /healthz``
    cheap liveness probe: drain state, queue depth vs the ``max_pending``
    cap, uptime and a small store summary.  This is what the cluster
    router polls to decide routing and shedding, and what an external
    load balancer should health-check — but it is useful standalone too.
``GET /algorithms``
    the registered-algorithm capability table.
``POST /warm``
    body ``{"prefixes": ["ab", ...], "limit": 64}``: pre-load the store's
    disk entries under those fingerprint prefixes into the memory tier
    (the cluster's cross-worker cache warming; see
    :meth:`~busytime.service.store.ResultStore.warm`).
``POST /sessions`` / ``POST /sessions/<id>/events`` / ``.../close`` and
``GET /sessions[/<id>[/assignment]]``
    the streaming-session API (:mod:`busytime.service.sessions`): create a
    stateful session, stream arrive/depart event batches through it with
    idempotent offsets (duplicate batches skip, gaps answer **409** with
    the expected offset), read the live assignment + realized cost, and
    settle it.  Per-tenant admission caps answer **429** with
    ``Retry-After``; a draining service refuses new sessions/events with
    **503**.

Overload and shutdown map onto status codes clients can act on: a service
at its ``max_pending`` queue-depth cap sheds the request with **429** and
a ``Retry-After`` hint; a draining service (graceful shutdown in
progress) answers **503** with ``Retry-After`` — and
:func:`submit_instance` honours both by retrying with exponential backoff
and jitter, so worker drains and restarts are invisible to callers.

Every handler thread shares the one service (``ThreadingHTTPServer``), so
concurrent clients exercise exactly the dedupe/batch path the service
implements.  :func:`make_server` binds (port 0 picks a free port) without
serving, so tests and the CLI can control the loop; :func:`serve` is the
blocking convenience the ``busytime serve`` command uses.

The module also carries the matching client helper (:func:`submit_instance`,
on ``urllib``) so ``busytime submit`` needs no extra dependency either.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple

from .. import io as bio
from ..algorithms import algorithm_table
from ..core.objectives import CostModel
from ..engine import RequestValidationError, SolveRequest
from .service import (
    AdmissionError,
    JobFailedError,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceOverloadedError,
    SolveService,
)
from .sessions import (
    SessionConflictError,
    SessionLimitError,
    SessionManager,
    SessionNotFoundError,
    SessionValidationError,
)

__all__ = [
    "SessionHTTPError",
    "make_server",
    "serve",
    "session_call",
    "submit_instance",
]

#: Hint clients receive with a 429 (shed) or draining 503: short, because
#: overload is bursty and drains precede an imminent replacement worker.
RETRY_AFTER_SECONDS = 1

#: SolveRequest options settable over the wire (tags and cost_model are
#: handled separately), with the JSON types each accepts — checked before
#: the request is built so a mistyped value is a 400, not a crashed handler
#: thread.
_REQUEST_OPTIONS = {
    "algorithm": (str, type(None)),
    "policy": (str, type(None)),
    "objective": (str,),
    "portfolio": (bool,),
    "time_limit": (int, float, type(None)),
    "race": (int,),
    "compute_optimum": (bool,),
    "max_jobs_for_optimum": (int,),
}

#: Default race width when a client sets ``deadline_ms`` without ``race``:
#: a deadline asks for anytime behaviour, which needs candidates to race.
_DEFAULT_RACE_WIDTH = 4


def _request_from_document(doc: Mapping[str, object]) -> SolveRequest:
    """Build a :class:`SolveRequest` from a ``POST /solve`` body."""
    if not isinstance(doc, Mapping) or "instance" not in doc:
        raise ValueError('body must be a JSON object with an "instance" field')
    instance = bio.instance_from_dict(doc["instance"])
    options = doc.get("options") or {}
    if not isinstance(options, Mapping):
        raise ValueError('"options" must be a JSON object')
    unknown = (
        set(options) - set(_REQUEST_OPTIONS) - {"tags", "cost_model", "deadline_ms"}
    )
    if unknown:
        raise ValueError(
            f"unknown options: {sorted(unknown)}; supported: "
            f"{sorted(_REQUEST_OPTIONS) + ['cost_model', 'deadline_ms', 'tags']}"
        )
    kwargs = {}
    for key, allowed in _REQUEST_OPTIONS.items():
        if key not in options:
            continue
        value = options[key]
        # bool is an int subclass: reject true where a number is wanted.
        if not isinstance(value, allowed) or (
            isinstance(value, bool) and bool not in allowed
        ):
            names = "/".join("null" if t is type(None) else t.__name__ for t in allowed)
            raise ValueError(
                f'option "{key}" must be {names}, got {type(value).__name__}'
            )
        kwargs[key] = value
    if "deadline_ms" in options and options["deadline_ms"] is not None:
        # Wire clients speak milliseconds (the natural unit for request
        # deadlines); the engine's SolveRequest speaks seconds.
        deadline_ms = options["deadline_ms"]
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ValueError(
                f'option "deadline_ms" must be int/float/null, '
                f"got {type(deadline_ms).__name__}"
            )
        kwargs["deadline"] = float(deadline_ms) / 1000.0
        # A deadline implies racing: default the width when the client did
        # not pick one (SolveRequest.validate rejects deadline without it).
        kwargs.setdefault("race", _DEFAULT_RACE_WIDTH)
    if "cost_model" in options and options["cost_model"] is not None:
        # CostModel.from_dict validates keys and numeric types; its
        # ValueError surfaces as a 400 like every other option error.  A
        # model naming an objective pins the request's objective unless the
        # caller also set (a then necessarily matching) "objective".
        model = CostModel.from_dict(options["cost_model"])
        kwargs["cost_model"] = model
        kwargs.setdefault("objective", model.objective)
    tags = options.get("tags") or {}
    if not isinstance(tags, Mapping):
        raise ValueError('"tags" must be a JSON object')
    return SolveRequest(instance=instance, tags=dict(tags), **kwargs)


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared HTTP plumbing for the JSON services in this package.

    Carries the request/response conventions every busytime endpoint needs
    — JSON replies with correct framing, refusals that close the keep-alive
    connection whenever the request body was not drained, a bounded body
    reader — so the single-worker frontend (:class:`_ServiceHandler`) and
    the cluster router (:mod:`busytime.service.cluster`) implement routing,
    not transport.
    """

    protocol_version = "HTTP/1.1"
    # Socket timeout (socketserver applies it in setup()): a client that
    # advertises a Content-Length and then under-sends would otherwise pin
    # this handler thread in rfile.read forever.
    timeout = 60.0
    # The response is written as two sends (header block, then body); with
    # Nagle on, the second would wait for the peer's delayed ACK of the
    # first — a ~40ms stall per request that dwarfs a cache hit.
    disable_nagle_algorithm = True

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", str(retry_after))
            if self.close_connection:
                # Advertise what we are about to do (set on refusals whose
                # request body was never drained — see _read_body).
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except ConnectionError:
            # The client hung up mid-exchange (e.g. disconnected while
            # sending its body).  Nobody is listening for this reply, and a
            # handler-thread traceback would be the only effect of raising.
            self.close_connection = True

    def _send_error_json(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        self._send_json(status, {"error": message}, retry_after=retry_after)

    def _read_body(self, max_bytes: int) -> Optional[bytes]:
        """Read the request body, or send the refusal and return ``None``.

        Every refusal here leaves the body undrained, so the keep-alive
        connection is closed with it — stale body bytes would otherwise
        parse as the connection's next request line.
        """
        if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
            # No Content-Length to bound or drain by; refuse and close.
            self.close_connection = True
            self._send_error_json(
                411, "chunked request bodies are not supported; send Content-Length"
            )
            return None
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length < 0:
                # A negative length would turn read(length) into
                # read-until-EOF — an unbounded buffer behind the body cap.
                raise ValueError
        except ValueError:
            self.close_connection = True
            self._send_error_json(400, "invalid Content-Length header")
            return None
        if length > max_bytes:
            # Refuse before reading: the admission limits must hold at the
            # socket too, or one oversized body buys an unbounded allocation.
            self.close_connection = True
            self._send_error_json(
                413,
                f"request body of {length} bytes is above the service "
                f"limit of {max_bytes}",
            )
            return None
        return self.rfile.read(length)


class _ServiceHandler(JsonRequestHandler):
    """Routes the worker endpoints onto the shared :class:`SolveService`."""

    server: "ServiceServer"

    # -- plumbing -------------------------------------------------------------

    def _job_payload(self, job_id: str, include_report: bool) -> Dict[str, object]:
        service = self.server.service
        payload: Dict[str, object] = service.poll(job_id)
        if include_report and payload["status"] == "done":
            report = service.result(job_id)
            payload["report"] = bio.solve_report_to_dict(report)
        return payload

    # -- endpoints ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path == "/warm":
            self._do_warm()
            return
        if path == "/sessions" or path.startswith("/sessions/"):
            self._do_sessions_post(path)
            return
        if path != "/solve":
            # The body (if any) is never drained on this path, so the
            # keep-alive connection must close with the refusal — stale
            # body bytes would otherwise parse as the next request line.
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: POST {self.path}")
            return
        raw = self._read_body(self.server.max_body_bytes)
        if raw is None:
            return
        try:
            doc = json.loads(raw.decode("utf-8"))
            request = _request_from_document(doc)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error_json(400, str(exc))
            return
        service = self.server.service
        try:
            job_id = service.submit(request)
        except AdmissionError as exc:
            self._send_error_json(413, str(exc))
            return
        except ServiceOverloadedError as exc:
            # Load shedding, not failure: the queue is at max_pending.  The
            # Retry-After hint tells well-behaved clients (and the cluster
            # router) to back off instead of hammering.
            self._send_error_json(429, str(exc), retry_after=RETRY_AFTER_SECONDS)
            return
        except ServiceDrainingError as exc:
            # Graceful shutdown in progress: the worker finishes what it
            # has but admits nothing new.  Unlike the closed 503 below the
            # connection stays usable (polls for in-flight jobs continue),
            # and Retry-After points the client at the imminent successor.
            self._send_error_json(503, str(exc), retry_after=RETRY_AFTER_SECONDS)
            return
        except ServiceClosedError as exc:
            # The service is shutting down under us ("caller owns the loop"
            # servers can close it first): a clean 503, not a dead thread.
            self.close_connection = True
            self._send_error_json(503, str(exc))
            return
        except (RequestValidationError, TypeError, ValueError) as exc:
            self._send_error_json(400, str(exc))
            return
        report = None
        if doc.get("wait"):
            try:
                report = service.result(job_id, timeout=self.server.wait_timeout)
            except TimeoutError:
                self._send_error_json(
                    504, f"{job_id} still running after {self.server.wait_timeout}s"
                )
                return
            except JobFailedError:
                pass  # the job payload below carries status=failed + the error
        try:
            payload = self._job_payload(job_id, include_report=report is None)
        except KeyError:
            # A very long wait can outlive the finished-job retention
            # window; the report (captured above) still reaches the caller.
            payload = {"job_id": job_id, "status": "done" if report else "expired"}
        if report is not None:
            payload["report"] = bio.solve_report_to_dict(report)
        self._send_json(200, payload)

    # -- streaming sessions ---------------------------------------------------

    def _do_sessions_post(self, path: str) -> None:
        """``POST /sessions`` (create), ``/sessions/<id>/events``, ``.../close``."""
        raw = self._read_body(self.server.max_body_bytes)
        if raw is None:
            return
        sessions = self.server.sessions
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(doc, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            if path == "/sessions":
                from .sessions import SessionConfig

                session_id = doc.pop("session_id", None)
                if session_id is not None and not isinstance(session_id, str):
                    raise SessionValidationError('"session_id" must be a string')
                config = SessionConfig.from_dict(doc)
                session = sessions.create(config, session_id=session_id)
                self._send_json(201, session.status())
                return
            parts = path.split("/")
            # /sessions/<id>/events | /sessions/<id>/close
            if len(parts) == 4 and parts[3] == "events":
                rows = doc.get("events")
                if not isinstance(rows, list):
                    raise SessionValidationError('"events" must be a list of event rows')
                first_offset = doc.get("first_offset")
                if first_offset is not None and (
                    not isinstance(first_offset, int) or isinstance(first_offset, bool)
                    or first_offset < 0
                ):
                    raise SessionValidationError(
                        '"first_offset" must be a non-negative integer'
                    )
                ack = sessions.apply_events(parts[2], rows, first_offset=first_offset)
                self._send_json(200, ack)
                return
            if len(parts) == 4 and parts[3] == "close":
                self._send_json(200, sessions.close_session(parts[2]))
                return
            self._send_error_json(404, f"no such endpoint: POST {self.path}")
        except SessionNotFoundError as exc:
            self._send_error_json(404, f"unknown session id: {exc.args[0]}")
        except SessionConflictError as exc:
            self._send_json(
                409, {"error": str(exc), "expected_offset": exc.expected_offset}
            )
        except SessionLimitError as exc:
            self._send_error_json(429, str(exc), retry_after=exc.retry_after)
        except ServiceDrainingError as exc:
            self._send_error_json(503, str(exc), retry_after=RETRY_AFTER_SECONDS)
        except SessionValidationError as exc:
            self._send_error_json(400, str(exc))

    def _do_sessions_get(self, path: str) -> None:
        """``GET /sessions``, ``/sessions/<id>``, ``/sessions/<id>/assignment``."""
        sessions = self.server.sessions
        try:
            if path == "/sessions":
                self._send_json(
                    200,
                    {
                        "sessions": sessions.list_sessions(),
                        "stats": sessions.stats(),
                    },
                )
                return
            parts = path.split("/")
            if len(parts) == 3:
                self._send_json(200, sessions.status(parts[2]))
                return
            if len(parts) == 4 and parts[3] == "assignment":
                self._send_json(200, sessions.assignment(parts[2]))
                return
            self._send_error_json(404, f"no such endpoint: GET {self.path}")
        except SessionNotFoundError as exc:
            self._send_error_json(404, f"unknown session id: {exc.args[0]}")
        except SessionValidationError as exc:
            self._send_error_json(400, str(exc))

    def _do_warm(self) -> None:
        """``POST /warm``: pre-load disk-tier shard prefixes into memory."""
        raw = self._read_body(self.server.max_body_bytes)
        if raw is None:
            return
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            prefixes = doc.get("prefixes", [])
            limit = doc.get("limit")
            if not isinstance(prefixes, list) or not all(
                isinstance(p, str) and p for p in prefixes
            ):
                raise ValueError('"prefixes" must be a list of fingerprint prefixes')
            if limit is not None and (not isinstance(limit, int) or limit < 0):
                raise ValueError('"limit" must be a non-negative integer')
        except (ValueError, TypeError, AttributeError) as exc:
            self._send_error_json(400, str(exc))
            return
        warmed = self.server.service.store.warm(prefixes, limit=limit)
        self._send_json(200, {"warmed": warmed, "prefixes": len(prefixes)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            health = self.server.service.health()
            # Liveness probes key off the status code, not the body: a
            # draining or closed worker is not a routable target.
            status = 200 if health["status"] == "ok" else 503
            self._send_json(status, health)
        elif path == "/stats":
            self._send_json(200, self.server.service.stats())
        elif path == "/algorithms":
            self._send_json(
                200,
                {
                    "algorithms": [
                        {
                            "name": info.name,
                            "paper_section": info.paper_section,
                            "approximation_ratio": info.approximation_ratio,
                            "instance_classes": list(info.instance_classes),
                            "portfolio_member": info.portfolio_member,
                            "supported_objectives": list(info.supported_objectives),
                            "demand_aware": info.demand_aware,
                            "window_aware": info.window_aware,
                            "tariff_aware": info.tariff_aware,
                        }
                        for info in algorithm_table()
                    ]
                },
            )
        elif path == "/sessions" or path.startswith("/sessions/"):
            self._do_sessions_get(path)
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                self._send_json(200, self._job_payload(job_id, include_report=True))
            except KeyError:
                self._send_error_json(404, f"unknown job id: {job_id}")
        else:
            self._send_error_json(404, f"no such endpoint: GET {self.path}")


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the shared service."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SolveService,
        verbose: bool = False,
        wait_timeout: Optional[float] = 300.0,
        max_body_bytes: int = 32 * 1024 * 1024,
        sessions: Optional[SessionManager] = None,
    ):
        super().__init__(address, _ServiceHandler)
        self.service = service
        # The session manager shares the service's engine, store and drain
        # state unless the caller wires a custom one (the cluster harness
        # does, to share one checkpoint store across workers).
        self.sessions = sessions if sessions is not None else SessionManager(service)
        self.verbose = verbose
        self.wait_timeout = wait_timeout
        self.max_body_bytes = max_body_bytes


def make_server(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    max_body_bytes: int = 32 * 1024 * 1024,
    wait_timeout: Optional[float] = 300.0,
    sessions: Optional[SessionManager] = None,
) -> ServiceServer:
    """Bind the JSON API (``port=0`` picks a free port) without serving.

    The caller owns the loop: ``server.serve_forever()`` to serve,
    ``server.shutdown(); server.server_close()`` to stop.  The bound port is
    ``server.server_address[1]``.  ``wait_timeout`` caps how long a
    ``"wait": true`` solve may block before a 504.  ``sessions`` overrides
    the default :class:`SessionManager` built over the service.
    """
    return ServiceServer(
        (host, port),
        service,
        verbose=verbose,
        max_body_bytes=max_body_bytes,
        wait_timeout=wait_timeout,
        sessions=sessions,
    )


def serve(  # pragma: no cover - blocking loop; the CI smoke drives it
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> None:
    """Blocking convenience: serve until interrupted, then close cleanly."""
    server = make_server(service, host=host, port=port, verbose=verbose)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()


# ---------------------------------------------------------------------------
# Client helper (used by `busytime submit`)
# ---------------------------------------------------------------------------


#: HTTP statuses worth retrying: shed load (429) and drain/restart (503).
_RETRYABLE_STATUSES = frozenset({429, 503})


def _backoff_delay(attempt: int, backoff: float, cap: float = 10.0) -> float:
    """Exponential backoff with full jitter (the standard AWS recipe)."""
    return random.uniform(0, min(cap, backoff * (2.0 ** attempt)))


class SessionHTTPError(RuntimeError):
    """A non-retryable session API refusal, carrying status + parsed payload.

    A 409 conflict's payload includes ``expected_offset``, which streaming
    clients use to resync and resend (see ``busytime session stream``).
    """

    def __init__(self, status: int, payload: Mapping[str, object]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = dict(payload)


def session_call(
    url: str,
    path: str,
    body: Optional[Mapping[str, object]] = None,
    timeout: float = 60.0,
    retries: int = 0,
    backoff: float = 0.25,
) -> Dict[str, object]:
    """One session API call: POST when ``body`` is given, GET otherwise.

    Returns the parsed JSON payload on 2xx.  429/503 answers and transport
    failures are retried up to ``retries`` times with jittered exponential
    backoff (a server ``Retry-After`` hint takes precedence); every other
    refusal raises :class:`SessionHTTPError` immediately with the parsed
    payload attached — a 409 conflict carries ``expected_offset`` there.
    """
    full = url.rstrip("/") + path
    data = None if body is None else json.dumps(dict(body)).encode("utf-8")
    method = "GET" if body is None else "POST"
    attempts = max(0, retries) + 1
    last_error = "no attempt made"
    for attempt in range(attempts):
        request = urllib.request.Request(
            full,
            data=data,
            headers={"Content-Type": "application/json"} if data is not None else {},
            method=method,
        )
        delay = _backoff_delay(attempt, backoff)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except Exception:  # noqa: BLE001 - surface the original HTTP error
                payload = {"error": str(exc)}
            if exc.code not in _RETRYABLE_STATUSES:
                raise SessionHTTPError(exc.code, payload) from None
            last_error = f"HTTP {exc.code}: {payload.get('error', payload)}"
            hint = exc.headers.get("Retry-After") if exc.headers else None
            if hint:
                try:
                    delay = min(float(hint), 10.0)
                except ValueError:
                    pass
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            if isinstance(exc, urllib.error.URLError) and not isinstance(
                reason, (ConnectionError, OSError)
            ):
                raise RuntimeError(f"service unreachable: {reason}") from None
            last_error = f"connection failed: {reason}"
        if attempt + 1 < attempts:
            time.sleep(delay)
    raise RuntimeError(
        f"session call {method} {path} failed after {attempts} attempts; "
        f"last error: {last_error}"
    )


def submit_instance(
    url: str,
    instance_doc: Mapping[str, object],
    options: Optional[Mapping[str, object]] = None,
    wait: bool = True,
    timeout: float = 300.0,
    retries: int = 0,
    backoff: float = 0.25,
    fingerprint: Optional[str] = None,
) -> Dict[str, object]:
    """POST one instance document to a running service and return the reply.

    ``url`` is the service base url (``http://host:port``); the reply is the
    parsed ``POST /solve`` payload (job id, status, and the report document
    when ``wait`` is true).  Raises ``RuntimeError`` with the server's
    message on a non-200 answer.

    ``retries`` > 0 turns on bounded retry with exponential backoff and
    full jitter for the failures that resolve themselves — connection
    refused/reset (a worker restarting, a router failing over) and 429/503
    answers (load shedding, graceful drain) — so those operational events
    are invisible to callers.  Errors that will not improve with time
    (400s, admission 413s) are never retried.  A server ``Retry-After``
    hint, when present, takes precedence over the computed delay.

    ``fingerprint`` (the :func:`~busytime.service.canonical.request_fingerprint`
    of the equivalent ``SolveRequest``) is forwarded as the
    ``X-Busytime-Fingerprint`` header; the cluster router then routes on it
    directly instead of re-canonicalizing the body.
    """
    body = json.dumps(
        {"instance": dict(instance_doc), "options": dict(options or {}), "wait": wait}
    ).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if fingerprint is not None:
        headers["X-Busytime-Fingerprint"] = fingerprint
    attempts = max(0, retries) + 1
    last_error = "no attempt made"
    for attempt in range(attempts):
        request = urllib.request.Request(
            url.rstrip("/") + "/solve", data=body, headers=headers, method="POST"
        )
        delay = _backoff_delay(attempt, backoff)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:  # noqa: BLE001 - surface the original HTTP error
                message = str(exc)
            if exc.code not in _RETRYABLE_STATUSES:
                raise RuntimeError(f"service rejected the request: {message}") from None
            last_error = f"HTTP {exc.code}: {message}"
            hint = exc.headers.get("Retry-After") if exc.headers else None
            if hint:
                try:
                    delay = min(float(hint), 10.0)
                except ValueError:
                    pass
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            if isinstance(exc, urllib.error.URLError) and not isinstance(
                reason, (ConnectionError, OSError)
            ):
                # Not a transport failure (e.g. a malformed URL): retrying
                # cannot help, so surface it immediately.
                raise RuntimeError(f"service unreachable: {reason}") from None
            last_error = f"connection failed: {reason}"
        if attempt + 1 < attempts:
            time.sleep(delay)
    raise RuntimeError(
        f"service did not accept the request after {attempts} attempts; "
        f"last error: {last_error}"
    )
