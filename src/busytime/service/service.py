"""`SolveService`: submit/poll/result semantics over the engine.

The service is the traffic-facing wrapper around
:class:`~busytime.engine.Engine`.  One submission travels through four
stages:

1. **admission** — requests above the configured size/time limits are
   rejected up front (:class:`AdmissionError`), before any work is queued;
2. **canonicalization** — the request is rewritten onto its canonical
   instance and fingerprinted (:mod:`busytime.service.canonical`), so
   relabeled / time-shifted duplicates of earlier traffic are recognised;
3. **cache & dedupe** — a fingerprint already in the
   :class:`~busytime.service.store.ResultStore` completes immediately
   (de-canonicalized back onto the caller's own job ids); a fingerprint
   currently *in flight* attaches to the existing solve instead of queueing
   a second one;
4. **micro-batching** — a background worker drains the queue in small
   batches (up to ``batch_size`` requests gathered within ``batch_window``
   seconds) and solves them, optionally fanning each batch out over a
   persistent process pool (``max_workers``) as one future per request so
   a poisoned request fails alone.

The service is thread-safe: HTTP handler threads (see
:mod:`busytime.service.frontend`) submit and poll concurrently with the
batch worker.  The internal lock guards only bookkeeping — cache lookups,
de-canonicalization and the solves themselves run outside it, so one slow
request never serializes the others.  Failures stay contained: a solve (or
cache-write) error fails the affected jobs with a recorded message rather
than wedging their fingerprint, ``close()`` fails whatever never ran, and
finished jobs are pruned past ``max_finished_jobs`` so a long-running
server does not accumulate every report it ever produced.

For deterministic tests the worker can be left unstarted
(``start_worker=False``) and driven manually with :meth:`process_once`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from queue import Empty, Queue
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from ..core.instance import Instance
from ..engine import Engine, SolveReport, SolveRequest
from .canonical import (
    CanonicalForm,
    canonical_request,
    canonicalize,
    decanonicalize_report,
    request_fingerprint,
)
from .store import ResultStore

__all__ = [
    "AdmissionError",
    "AdmissionLimits",
    "JobFailedError",
    "ServiceClosedError",
    "ServiceDrainingError",
    "ServiceOverloadedError",
    "SolveService",
]


class AdmissionError(ValueError):
    """Raised at submit time when a request exceeds the admission limits."""


class JobFailedError(RuntimeError):
    """Raised by :meth:`SolveService.result` when the solve itself failed."""


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a service that has been closed."""


class ServiceDrainingError(ServiceClosedError):
    """Raised when submitting to a service that is draining (shutdown soon).

    Subclasses :class:`ServiceClosedError` so existing "service gone" error
    handling keeps working; the HTTP frontend additionally answers it with
    a ``Retry-After`` hint, because a drain usually precedes a restart and
    the retrying client will find a fresh worker.
    """


class ServiceOverloadedError(RuntimeError):
    """Raised at submit time when the in-flight queue is at ``max_pending``.

    This is load shedding, not failure: the request was *not* queued, and
    the caller should back off and retry (the HTTP frontend maps this to
    429 + ``Retry-After``; the cluster router spills the request to the
    next replica first).
    """


@dataclass(frozen=True)
class AdmissionLimits:
    """Per-request admission limits enforced at submit time.

    ``max_jobs`` caps the instance size; ``max_time_limit`` caps (and, for
    dispatched solves that did not set one, supplies) the per-request soft
    time budget, so no single request can hold a batch slot indefinitely.
    Racing requests budget with their shared ``deadline`` instead of
    ``time_limit``; the same ``max_time_limit`` cap applies to it, and a
    race submitted without a deadline gets ``max_time_limit`` as one —
    racing runs *behind* admission control, never around it.
    Forced-algorithm solves cannot be preempted by a time budget at all
    (see :class:`~busytime.engine.request.SolveRequest`), so they get the
    tighter ``max_forced_jobs`` size cap instead — otherwise one huge
    forced solve head-of-line blocks the batch worker with no recourse.
    Any limit may be ``None`` to disable that check.
    """

    max_jobs: Optional[int] = 20_000
    max_time_limit: Optional[float] = 60.0
    max_forced_jobs: Optional[int] = 5_000

    def admit(self, request: SolveRequest) -> SolveRequest:
        """Validate ``request`` and return it with limits applied.

        Raises :class:`AdmissionError` on violation.  Dispatched requests
        without a ``time_limit`` get ``max_time_limit`` as their budget;
        racing requests without a ``deadline`` likewise.
        """
        if self.max_jobs is not None and request.instance.n > self.max_jobs:
            raise AdmissionError(
                f"instance has {request.instance.n} jobs, above the service "
                f"limit of {self.max_jobs}"
            )
        if (
            request.algorithm is not None
            and self.max_forced_jobs is not None
            and request.instance.n > self.max_forced_jobs
        ):
            raise AdmissionError(
                f"forced-algorithm solves cannot be preempted by a time "
                f"budget, so they are capped at {self.max_forced_jobs} jobs; "
                f"this instance has {request.instance.n} (drop the explicit "
                f"algorithm to use policy dispatch)"
            )
        if self.max_time_limit is not None:
            if request.time_limit is not None and request.time_limit > self.max_time_limit:
                raise AdmissionError(
                    f"time_limit {request.time_limit}s is above the service "
                    f"limit of {self.max_time_limit}s"
                )
            if request.deadline is not None and request.deadline > self.max_time_limit:
                raise AdmissionError(
                    f"deadline {request.deadline}s is above the service "
                    f"limit of {self.max_time_limit}s"
                )
            if request.race >= 2:
                if request.deadline is None:
                    request = replace(request, deadline=self.max_time_limit)
            elif request.time_limit is None and request.algorithm is None:
                request = replace(request, time_limit=self.max_time_limit)
        return request


#: Job lifecycle states reported by :meth:`SolveService.poll`.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class _Job:
    """One caller-visible submission (several may share one flight)."""

    job_id: str
    fingerprint: str
    form: CanonicalForm
    original: Instance
    tags: Dict[str, object]
    status: str = QUEUED
    cached: bool = False
    deduped: bool = False
    report: Optional[SolveReport] = None
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)


@dataclass
class _Flight:
    """One in-flight canonical solve, shared by all jobs with its fingerprint."""

    request: SolveRequest
    job_ids: List[str] = field(default_factory=list)


class SolveService:
    """Thread-safe solve-as-a-service facade (submit / poll / result).

    Parameters
    ----------
    engine:
        The solve engine; a default one is built when omitted.
    store:
        Result cache; a memory-only :class:`ResultStore` when omitted.
    limits:
        Admission limits (see :class:`AdmissionLimits`).
    batch_size / batch_window:
        Micro-batching knobs: the worker gathers up to ``batch_size``
        distinct queued fingerprints within ``batch_window`` seconds and
        solves them as one batch.
    max_workers:
        Fan gathered batches out across a persistent process pool of this
        size (``None``/1 solves serially in the worker thread — right for
        small instances where pool shipping would dominate).
    max_finished_jobs:
        Finished (done/failed) jobs older than the newest this many are
        pruned from the poll table; their ids then answer ``KeyError``.
        Waiters that already hold the job keep their reference — pruning
        only bounds the table a long-running server retains.
    max_pending:
        Queue-depth cap: a submission that would queue a *new* solve while
        this many fingerprints are already in flight is shed with
        :class:`ServiceOverloadedError` instead of queued.  Cache hits and
        in-flight dedupe attach regardless (they add no work).  ``None``
        (the default) disables shedding.
    start_worker:
        Start the background batch worker (default).  Pass ``False`` to
        drive the queue manually with :meth:`process_once` (tests do).
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        store: Optional[ResultStore] = None,
        limits: Optional[AdmissionLimits] = None,
        batch_size: int = 8,
        batch_window: float = 0.01,
        max_workers: Optional[int] = None,
        max_finished_jobs: int = 4096,
        max_pending: Optional[int] = None,
        start_worker: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_finished_jobs < 1:
            raise ValueError(f"max_finished_jobs must be >= 1, got {max_finished_jobs}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 (or None), got {max_pending}")
        self.engine = engine if engine is not None else Engine()
        # `is not None`, not truthiness: an empty ResultStore has len() == 0
        # and would otherwise be silently swapped for a memory-only one.
        self.store = store if store is not None else ResultStore()
        self.limits = limits if limits is not None else AdmissionLimits()
        self.batch_size = batch_size
        self.batch_window = batch_window
        self.max_workers = max_workers
        self.max_finished_jobs = max_finished_jobs
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._finished: Deque[str] = deque()
        self._inflight: Dict[str, _Flight] = {}
        self._queue: "Queue[str]" = Queue()
        self._ids = itertools.count(1)
        self._closed = False
        self._draining = False
        self._started_at = time.monotonic()
        self._shed = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._deduped = 0
        self._rejected = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0
        self._store_put_failures = 0
        self._executor = None  # lazily-built persistent process pool
        self._worker: Optional[threading.Thread] = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._worker_loop, name="busytime-service-worker", daemon=True
            )
            self._worker.start()

    # -- submission ------------------------------------------------------------

    def submit(self, request: SolveRequest) -> str:
        """Queue (or instantly answer) one request; returns the job id."""
        request.validate()
        try:
            request = self.limits.admit(request)
        except AdmissionError:
            with self._lock:
                self._rejected += 1
            raise
        if request.policy is None:
            # Resolve the engine's default into the request before
            # fingerprinting (as solve_many does before pooling): two
            # services with different default policies sharing one store
            # must not serve each other's policy=None answers.
            request = replace(request, policy=self.engine.default_policy)
        form = canonicalize(request.instance)
        fingerprint = request_fingerprint(request, form)
        job = _Job(
            job_id=f"job-{next(self._ids):06d}",
            fingerprint=fingerprint,
            form=form,
            original=request.instance,
            tags=dict(request.tags),
        )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            self._submitted += 1
            self._jobs[job.job_id] = job
            if self._attach_if_inflight(job):
                return job.job_id

        # Cache lookup outside the lock: the disk tier re-validates the
        # stored schedule, which must not serialize other submitters.
        cached = self.store.get(fingerprint)
        if cached is not None:
            job.cached = True
            self._finish_job(job, cached)
            return job.job_id

        # Build the canonical request before taking the lock: it constructs
        # the O(n) canonical Instance, which must not serialize everyone
        # (wasted only in the rare race where the job attaches below).
        canonical = canonical_request(request, form)[0]
        with self._lock:
            # close() may have run while we were looking at the store; a
            # flight queued now would never be drained, so refuse instead.
            if self._closed:
                self._jobs.pop(job.job_id, None)
                raise ServiceClosedError("service is closed")
            # An identical request may have gone in flight while we were
            # looking at the store; join it rather than queueing a twin.
            if self._attach_if_inflight(job):
                return job.job_id
            # ... or have *completed* in that window: the memory tier is
            # populated before a flight retires, so a cheap peek here stops
            # a just-solved fingerprint from being re-solved from scratch.
            cached = self.store.peek(fingerprint)
            if cached is None:
                # Only *new* solves are refused while draining or shedding:
                # cache hits and dedupe attaches (above) ride along free.
                if self._draining:
                    self._jobs.pop(job.job_id, None)
                    self._submitted -= 1
                    raise ServiceDrainingError(
                        "service is draining; submit to another worker"
                    )
                if (
                    self.max_pending is not None
                    and len(self._inflight) >= self.max_pending
                ):
                    self._jobs.pop(job.job_id, None)
                    self._submitted -= 1
                    self._shed += 1
                    raise ServiceOverloadedError(
                        f"queue depth is at the max_pending cap of "
                        f"{self.max_pending}; retry after backoff"
                    )
                self._inflight[fingerprint] = _Flight(
                    request=canonical, job_ids=[job.job_id]
                )
                self._queue.put(fingerprint)
        if cached is not None:
            job.cached = True
            self._finish_job(job, cached)
        return job.job_id

    def _attach_if_inflight(self, job: _Job) -> bool:
        """Attach ``job`` to an existing flight (lock held); True on success."""
        flight = self._inflight.get(job.fingerprint)
        if flight is None:
            return False
        job.deduped = True
        self._deduped += 1
        flight.job_ids.append(job.job_id)
        return True

    def solve(self, request: SolveRequest, timeout: Optional[float] = None) -> SolveReport:
        """Synchronous convenience: submit and wait for the report."""
        return self.result(self.submit(request), timeout=timeout)

    # -- polling ---------------------------------------------------------------

    def poll(self, job_id: str) -> Dict[str, object]:
        """Status snapshot of one job.

        Raises ``KeyError`` for ids that are unknown — or finished so long
        ago that the retention window (``max_finished_jobs``) pruned them.
        """
        with self._lock:
            job = self._jobs[job_id]
            return {
                "job_id": job.job_id,
                "status": job.status,
                "fingerprint": job.fingerprint,
                "cached": job.cached,
                "deduped": job.deduped,
                "error": job.error,
            }

    def result(self, job_id: str, timeout: Optional[float] = None) -> SolveReport:
        """Block until the job finishes and return its report.

        Raises ``KeyError`` for unknown (or pruned) ids,
        :class:`JobFailedError` when the solve failed, and ``TimeoutError``
        when ``timeout`` elapses.
        """
        with self._lock:
            job = self._jobs[job_id]
        if not job.done.wait(timeout):
            raise TimeoutError(f"{job_id} did not finish within {timeout}s")
        if job.status == FAILED:
            raise JobFailedError(f"{job_id} failed: {job.error}")
        assert job.report is not None
        return job.report

    # -- the batch worker ------------------------------------------------------

    def process_once(self, block: bool = True, timeout: float = 0.1) -> int:
        """Drain one micro-batch from the queue and solve it.

        Returns the number of fingerprints solved (0 when the queue stayed
        empty).  This is the unit of work the background worker loops on;
        tests call it directly for deterministic batching.
        """
        try:
            first = self._queue.get(block=block, timeout=timeout if block else None)
        except Empty:
            return 0
        batch = [first]
        deadline = time.monotonic() + self.batch_window
        while len(batch) < self.batch_size:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    batch.append(self._queue.get(timeout=remaining))
                else:
                    batch.append(self._queue.get_nowait())
            except Empty:
                break

        with self._lock:
            # close() may have failed these flights already; skip the stale
            # queue entries instead of re-solving for nobody.
            flights = [
                (fp, self._inflight[fp]) for fp in batch if fp in self._inflight
            ]
            if not flights:
                return len(batch)
            for _, flight in flights:
                for job_id in flight.job_ids:
                    self._jobs[job_id].status = RUNNING
            self._batches += 1
            self._batched_requests += len(flights)
            self._largest_batch = max(self._largest_batch, len(flights))

        results = self._solve_batch(flights)

        for fp, report, error in results:
            if report is not None and not report.budget_exhausted:
                # A budget-exhausted report is the *degraded* answer for
                # this moment's load (FirstFit fallback past the time
                # limit, or a deadline-truncated — hence non-decisive,
                # timing-dependent — race); the waiting jobs get it, but
                # caching it would serve the degraded schedule to every
                # future equivalent request even after load subsides.
                try:
                    self.store.put(fp, report)
                except Exception:  # noqa: BLE001 - caching is best-effort
                    # A full disk or unwritable store directory must not
                    # wedge the request: the report is in hand, serve it.
                    with self._lock:
                        self._store_put_failures += 1
            with self._lock:
                flight = self._inflight.pop(fp, None)
                jobs = (
                    [self._jobs[job_id] for job_id in flight.job_ids]
                    if flight is not None
                    else []
                )
            for job in jobs:
                if report is not None:
                    self._finish_job(job, report)
                else:
                    self._fail_job(job, error or "solve failed")
        return len(batch)

    def _finish_job(self, job: _Job, canonical_report: SolveReport) -> None:
        """Resolve one job from a canonical report (call without the lock:
        the O(n) de-canonicalization must not serialize other threads)."""
        try:
            report = decanonicalize_report(
                canonical_report, job.form, job.original, tags=job.tags
            )
        except Exception as exc:  # noqa: BLE001 - a mapping failure is a real answer
            self._fail_job(job, f"de-canonicalization failed: {exc}")
            return
        with self._lock:
            if job.done.is_set():
                return
            job.report = report
            job.status = DONE
            self._completed += 1
            self._prune_finished(job.job_id)
        job.done.set()

    def _fail_job(self, job: _Job, error: str) -> None:
        with self._lock:
            if job.done.is_set():
                return
            job.status = FAILED
            job.error = error
            self._failed += 1
            self._prune_finished(job.job_id)
        job.done.set()

    def _prune_finished(self, job_id: str) -> None:
        """Record a finished job and trim the table (lock held).

        Waiters holding the job object are unaffected; only the id lookup
        table is bounded, so a long-running server does not retain every
        report it ever served.
        """
        self._finished.append(job_id)
        while len(self._finished) > self.max_finished_jobs:
            self._jobs.pop(self._finished.popleft(), None)

    def _solve_batch(
        self, flights: List[Tuple[str, _Flight]]
    ) -> List[Tuple[str, Optional[SolveReport], Optional[str]]]:
        """Solve one gathered batch, isolating failures per request.

        Multi-request batches go through the persistent process pool as one
        future per request, so one poisoned request costs only its own
        entry — its batch-mates' completed results are kept, not re-solved.
        A broken pool (killed worker child) is discarded so the next batch
        rebuilds it, and the affected requests retry serially in-thread.

        Racing requests (``race >= 2``) are the exception to the
        one-future-per-request shape: they solve in this thread with the
        *pool itself* as the race's executor, so their candidates fan out
        as one pool task each (no pool-in-pool) while their batch-mates'
        futures progress concurrently.  With no pool configured the race
        runs serially in rank order — same winner either way, racing is
        timing-independent by construction.
        """
        from concurrent.futures import BrokenExecutor

        from ..engine.core import _pool_worker

        raced = any(flight.request.race >= 2 for _, flight in flights)
        # A lone racing flight still wants the pool (for its candidates),
        # which _batch_executor would skip for batch_len 1.
        executor = self._batch_executor(
            max(len(flights), 2) if raced else len(flights)
        )
        futures = None
        if executor is not None:
            try:
                futures = [
                    (
                        None
                        if flight.request.race >= 2
                        else executor.submit(_pool_worker, flight.request)
                    )
                    for _, flight in flights
                ]
            except Exception:  # pool unusable (e.g. shutting down)
                self._discard_executor()
                futures = None
                executor = None
        results: List[Tuple[str, Optional[SolveReport], Optional[str]]] = []
        for index, (fp, flight) in enumerate(flights):
            report: Optional[SolveReport] = None
            error: Optional[str] = None
            try:
                if futures is not None and futures[index] is not None:
                    report = futures[index].result()
                elif flight.request.race >= 2:
                    report = self.engine.solve(flight.request, executor=executor)
                else:
                    report = self.engine.solve(flight.request)
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                if isinstance(exc, BrokenExecutor):
                    self._discard_executor()
                    try:
                        # The serial retry also drops the race executor: a
                        # rank-order serial race reproduces the same winner.
                        report = self.engine.solve(flight.request)
                    except Exception as retry_exc:  # noqa: BLE001
                        error = f"{type(retry_exc).__name__}: {retry_exc}"
                else:
                    error = f"{type(exc).__name__}: {exc}"
            results.append((fp, report, error))
        return results

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _batch_executor(self, batch_len: int):
        """The persistent process pool for multi-request batches, or ``None``.

        Built once and reused across micro-batches (a pool per batch would
        pay process startup every ``batch_window``); :meth:`close` shuts it
        down.  Serial in-thread solving is kept for single-request batches
        and for the default ``max_workers=None`` configuration.
        """
        if self.max_workers is None or self.max_workers <= 1 or batch_len <= 1:
            return None
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # Never fork: the service process is multithreaded (HTTP handler
            # threads + this worker), and a forked child inheriting a lock
            # held mid-operation by another thread deadlocks.  forkserver /
            # spawn re-import the package in the children, which requests
            # survive (they are picklable frozen dataclasses by design).
            available = multiprocessing.get_all_start_methods()
            method = "forkserver" if "forkserver" in available else "spawn"
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context(method),
            )
        return self._executor

    def _worker_loop(self) -> None:
        while not self._closed:
            try:
                self.process_once(block=True, timeout=0.1)
            except Exception:  # pragma: no cover - defensive: keep serving
                continue

    # -- lifecycle / stats -----------------------------------------------------

    def queue_depth(self) -> int:
        """Number of fingerprints currently in flight (queued or solving)."""
        with self._lock:
            return len(self._inflight)

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun (new work is being refused).

        Layered components (the session manager) consult this so their own
        admission tracks the service's lifecycle instead of duplicating it.
        """
        with self._lock:
            return self._draining or self._closed

    def health(self) -> Dict[str, object]:
        """Cheap liveness snapshot (the ``GET /healthz`` payload).

        Unlike :meth:`stats` this is meant for *frequent* polling — the
        cluster router reads it to decide shedding and routing — so it
        carries the queue depth and drain state plus a small store summary,
        not the full counter set.
        """
        store_stats = self.store.stats()
        with self._lock:
            if self._closed:
                status = "closed"
            elif self._draining:
                status = "draining"
            else:
                status = "ok"
            return {
                "status": status,
                "queue_depth": len(self._inflight),
                "max_pending": self.max_pending,
                "shed": self._shed,
                "jobs_tracked": len(self._jobs),
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "store": {
                    key: store_stats[key]
                    for key in ("size", "capacity", "disk_entries", "hit_rate")
                },
            }

    def stats(self) -> Dict[str, object]:
        """Service counters plus the store's hit/miss/eviction stats."""
        with self._lock:
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "shed": self._shed,
                "draining": self._draining,
                "deduped_inflight": self._deduped,
                "pending": len(self._inflight),
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "largest_batch": self._largest_batch,
                "mean_batch": (
                    self._batched_requests / self._batches if self._batches else 0.0
                ),
                "store_put_failures": self._store_put_failures,
                "store": self.store.stats(),
            }

    def drain(self, timeout: Optional[float] = 30.0, poll: float = 0.05) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight work, close.

        New solves are refused with :class:`ServiceDrainingError` from the
        moment this is called (cache hits and dedupe attaches still serve),
        the batch worker keeps draining the queue, and once nothing is in
        flight — or ``timeout`` elapses — the service closes.  Results are
        flushed to the store as each flight retires (store writes are
        synchronous), so a drained worker leaves the shared disk tier
        complete for its successors.

        Returns ``True`` when everything in flight finished inside the
        timeout; ``False`` when :meth:`close` had to fail leftovers.
        """
        with self._lock:
            self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = False
        while True:
            with self._lock:
                if not self._inflight:
                    drained = True
                    break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(poll)
        self.close()
        return drained

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, join the batch worker, fail whatever is left.

        Jobs still queued (or mid-solve past the join timeout) are marked
        failed with a ``ServiceClosedError`` message, so ``result()``
        callers wake up instead of waiting on work that will never run.
        """
        with self._lock:
            self._closed = True
        if self._worker is not None:
            self._worker.join(timeout)
            self._worker = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        with self._lock:
            leftovers = [
                self._jobs[job_id]
                for flight in self._inflight.values()
                for job_id in flight.job_ids
            ]
            self._inflight.clear()
        for job in leftovers:
            self._fail_job(job, "service closed before the solve ran")

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
