"""Streaming solve sessions: stateful event-driven scheduling in the service.

A *session* is a long-lived scheduling conversation: a client creates it
with the static knobs of a dynamic workload (parallelism bound ``g``, the
replay horizon, a migration policy) and then streams arrive/depart events
in batches, reading back the live assignment and realized-cost accounting
at any point.  Under the hood each session owns a streaming
:class:`~busytime.extensions.dynamic.Simulator`
(:meth:`~busytime.extensions.dynamic.Simulator.streaming`) — the *same*
replay core the offline simulator runs — so a session fed a trace event by
event lands on bit-identical placements, migrations and realized cost to
the offline replay of that trace.  The differential test suite pins this.

Three properties carry the production story:

**Idempotent event offsets.**  Every session counts applied events; a batch
names the offset of its first event (``first_offset``; omitted means
"append").  A batch at or before the applied offset is a duplicate delivery
— already-applied events are skipped, never re-applied — and a batch past
it is a gap, refused with :class:`SessionConflictError` carrying the offset
the server expects.  Retrying clients and at-least-once delivery are
therefore safe by construction.

**Checkpointed recovery.**  After every ``checkpoint_every`` applied events
(default 1: checkpoint *before* acknowledging) the session's event log and
config are published as a JSON document through the
:class:`~busytime.service.store.ResultStore` document API.  A manager that
does not know a session id rebuilds it from the checkpoint by replaying
the logged events through a fresh streaming simulator — deterministic, so
the recovered session is indistinguishable from the lost one.  With the
default cadence an acknowledged event is by definition durable: the
fault-injection kill drill asserts a worker killed mid-session loses zero
acknowledged events on the failover owner and never double-applies one.

**Multi-tenant admission.**  Session counts (global and per tenant), batch
sizes and per-tenant event rates (token bucket) are capped;
:class:`SessionLimitError` carries a retry hint the HTTP frontend turns
into ``429 Retry-After``, and a draining
:class:`~busytime.service.SolveService` refuses new sessions and new
events with the same 503 the solve path uses.  Over-cap or invalid batches
are probed against a :class:`~busytime.core.events.TraceValidator` snapshot
*before* any mutation, so a refused batch never partially applies.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.events import TraceEvent, TraceValidationError, TraceValidator
from ..extensions.dynamic import (
    MigrationBudget,
    NeverMigrate,
    RollingHorizon,
    SimulationPolicy,
    Simulator,
)
from ..io import trace_event_from_dict, trace_event_to_dict
from .service import ServiceDrainingError, SolveService
from .store import ResultStore

__all__ = [
    "Session",
    "SessionConfig",
    "SessionConflictError",
    "SessionLimitError",
    "SessionLimits",
    "SessionManager",
    "SessionNotFoundError",
    "SessionValidationError",
    "session_policy",
]

#: Checkpoint document format stamp (stored via the ResultStore doc API).
_CHECKPOINT_FORMAT = "busytime-session"
_CHECKPOINT_VERSION = 1

_POLICIES = ("never_migrate", "rolling_horizon", "migration_budget")


class SessionNotFoundError(KeyError):
    """No live session and no checkpoint under the requested id."""


class SessionConflictError(RuntimeError):
    """A batch's ``first_offset`` is ahead of the applied offset (a gap).

    Carries :attr:`expected_offset` so the client can resync and resend.
    """

    def __init__(self, message: str, expected_offset: int):
        super().__init__(message)
        self.expected_offset = expected_offset


class SessionLimitError(RuntimeError):
    """An admission cap refused the operation (retry after backing off)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class SessionValidationError(ValueError):
    """A malformed config or event batch (nothing was applied)."""


def session_policy(
    policy: str,
    replan_period: Optional[float],
    budget: int,
    algorithm: Optional[str],
    placement: str,
) -> SimulationPolicy:
    """Build the :mod:`~busytime.extensions.dynamic` policy a config names."""
    if policy == "never_migrate":
        return NeverMigrate(placement=placement)
    if policy in ("rolling_horizon", "migration_budget"):
        if replan_period is None:
            raise SessionValidationError(
                f"policy {policy!r} needs a replan_period"
            )
        if policy == "rolling_horizon":
            return RollingHorizon(
                replan_period, algorithm=algorithm, placement=placement
            )
        return MigrationBudget(
            replan_period, budget=budget, algorithm=algorithm, placement=placement
        )
    raise SessionValidationError(
        f"unknown policy {policy!r}; available: {', '.join(_POLICIES)}"
    )


@dataclass(frozen=True)
class SessionConfig:
    """The static knobs of one streaming session.

    ``horizon`` plays the role a trace's own horizon plays offline: replans
    fire at ``horizon[0] + k * replan_period`` and realized cost settles at
    ``horizon[1]`` when the session closes.  To reproduce an offline replay
    exactly, pass the trace's ``horizon``.
    """

    g: int
    horizon: Tuple[float, float]
    policy: str = "never_migrate"
    replan_period: Optional[float] = None
    budget: int = 4
    algorithm: Optional[str] = "first_fit"
    placement: str = "first_fit"
    oracle_check_every: Optional[int] = None
    #: checkpoint after every this many applied events; 1 (the default)
    #: means checkpoint-before-ack — an acknowledged event is durable.
    checkpoint_every: int = 1
    tenant: str = "default"
    name: str = ""
    #: advisory per-event decision budget; violations are counted, not fatal
    latency_slo_ms: Optional[float] = None

    def validate(self) -> None:
        if self.g < 1:
            raise SessionValidationError(f"g must be >= 1, got {self.g}")
        lo, hi = self.horizon
        if not hi >= lo:
            raise SessionValidationError(
                f"horizon end must be >= start, got {self.horizon}"
            )
        if self.checkpoint_every < 1:
            raise SessionValidationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.latency_slo_ms is not None and self.latency_slo_ms <= 0:
            raise SessionValidationError(
                f"latency_slo_ms must be positive, got {self.latency_slo_ms}"
            )
        # Fail fast on a policy the simulator would refuse at first event.
        session_policy(
            self.policy, self.replan_period, self.budget,
            self.algorithm, self.placement,
        )

    def make_policy(self) -> SimulationPolicy:
        return session_policy(
            self.policy, self.replan_period, self.budget,
            self.algorithm, self.placement,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "g": self.g,
            "horizon": list(self.horizon),
            "policy": self.policy,
            "replan_period": self.replan_period,
            "budget": self.budget,
            "algorithm": self.algorithm,
            "placement": self.placement,
            "oracle_check_every": self.oracle_check_every,
            "checkpoint_every": self.checkpoint_every,
            "tenant": self.tenant,
            "name": self.name,
            "latency_slo_ms": self.latency_slo_ms,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "SessionConfig":
        if not isinstance(doc, Mapping):
            raise SessionValidationError("session config must be a JSON object")
        unknown = set(doc) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise SessionValidationError(
                f"unknown session config fields: {sorted(unknown)}"
            )
        if "g" not in doc or "horizon" not in doc:
            raise SessionValidationError('session config needs "g" and "horizon"')
        horizon = doc["horizon"]
        if (
            not isinstance(horizon, Sequence)
            or isinstance(horizon, (str, bytes))
            or len(horizon) != 2
        ):
            raise SessionValidationError('"horizon" must be a [start, end] pair')
        try:
            config = cls(
                g=int(doc["g"]),  # type: ignore[arg-type]
                horizon=(float(horizon[0]), float(horizon[1])),
                policy=str(doc.get("policy", "never_migrate")),
                replan_period=(
                    None if doc.get("replan_period") is None
                    else float(doc["replan_period"])  # type: ignore[arg-type]
                ),
                budget=int(doc.get("budget", 4)),  # type: ignore[arg-type]
                algorithm=(
                    None if doc.get("algorithm", "first_fit") is None
                    else str(doc.get("algorithm", "first_fit"))
                ),
                placement=str(doc.get("placement", "first_fit")),
                oracle_check_every=(
                    None if doc.get("oracle_check_every") is None
                    else int(doc["oracle_check_every"])  # type: ignore[arg-type]
                ),
                checkpoint_every=int(doc.get("checkpoint_every", 1)),  # type: ignore[arg-type]
                tenant=str(doc.get("tenant", "default")),
                name=str(doc.get("name", "")),
                latency_slo_ms=(
                    None if doc.get("latency_slo_ms") is None
                    else float(doc["latency_slo_ms"])  # type: ignore[arg-type]
                ),
            )
        except (TypeError, ValueError) as exc:
            raise SessionValidationError(f"malformed session config: {exc}") from None
        config.validate()
        return config


class Session:
    """One live streaming session: a validator-fronted streaming simulator.

    All mutation goes through :meth:`apply`; state reads take the same lock
    so concurrent posters and readers see consistent snapshots.  The event
    log is retained verbatim — it *is* the checkpoint (event sourcing), and
    deterministic replay of it reconstructs the session exactly.
    """

    def __init__(self, session_id: str, config: SessionConfig, engine=None):
        self.id = session_id
        self.config = config
        self.lock = threading.RLock()
        self.sim = Simulator.streaming(
            g=config.g,
            policy=config.make_policy(),
            horizon=config.horizon,
            oracle_check_every=config.oracle_check_every,
            engine=engine,
            name=config.name or session_id,
        )
        self.validator = TraceValidator()
        self.events: List[TraceEvent] = []
        self.applied = 0  # == the next expected first_offset
        self.checkpointed_at = 0  # applied offset of the last checkpoint
        self.closed = False
        self.report = None  # SimulationReport once closed
        self.slo_violations = 0
        self.decision_seconds = 0.0  # total wall time inside sim.feed

    # -- event application ----------------------------------------------------

    def prepare(
        self, rows: Sequence[Mapping[str, object]], first_offset: Optional[int]
    ) -> List[TraceEvent]:
        """Parse + dedupe + probe a batch; the events left to apply.

        Caller must hold :attr:`lock`.  Raises without mutating anything:
        the probe runs against a *copy* of the validator, so a refused
        batch — malformed rows, out-of-order events, duplicate arrivals —
        never partially applies.
        """
        if self.closed:
            raise SessionValidationError(f"session {self.id} is closed")
        offset = self.applied if first_offset is None else first_offset
        if offset > self.applied:
            raise SessionConflictError(
                f"batch starts at offset {offset} but session {self.id} has "
                f"applied {self.applied} events; resend from {self.applied}",
                expected_offset=self.applied,
            )
        try:
            events = [trace_event_from_dict(row) for row in rows]
        except (TypeError, ValueError, KeyError) as exc:
            raise SessionValidationError(f"malformed event row: {exc}") from None
        # Duplicate delivery of an already-applied prefix: skip, don't re-apply.
        events = events[self.applied - offset:]
        probe = self.validator.copy()
        try:
            for event in events:
                probe.feed(event)
        except TraceValidationError as exc:
            raise SessionValidationError(str(exc)) from None
        return events

    def apply(
        self,
        rows: Sequence[Mapping[str, object]],
        first_offset: Optional[int] = None,
    ) -> Dict[str, object]:
        """Apply one batch (idempotent by offset) and return the ack payload."""
        with self.lock:
            events = self.prepare(rows, first_offset)
            started = time.perf_counter()
            for event in events:
                self.validator.feed(event)
                self.sim.feed(event)
                self.events.append(event)
                self.applied += 1
            elapsed = time.perf_counter() - started
            self.decision_seconds += elapsed
            slo = self.config.latency_slo_ms
            if slo is not None and events and (
                elapsed / len(events) > slo / 1000.0
            ):
                self.slo_violations += 1
            return {
                "session_id": self.id,
                "applied": self.applied,
                "accepted": len(events),
                "duplicates": len(rows) - len(events),
                "live_jobs": len(self.validator.live_job_ids),
                "machines": self.sim.builder.num_machines,
            }

    # -- reads -----------------------------------------------------------------

    def assignment(self) -> Dict[str, object]:
        """The live schedule: job -> machine, plus realized-cost accounting."""
        with self.lock:
            placed = self.sim.live_assignment()
            return {
                "session_id": self.id,
                "applied": self.applied,
                "clock": self.sim._clock,
                "assignment": {str(job_id): m for job_id, m in sorted(placed.items())},
                "machines": self.sim.builder.num_machines,
                "live_jobs": len(placed),
                "realized_cost": self.sim.realized_cost_so_far(),
                "migrations": self.sim._migrations,
                "replans": self.sim._replans,
                "closed": self.closed,
            }

    def status(self) -> Dict[str, object]:
        with self.lock:
            return {
                "session_id": self.id,
                "tenant": self.config.tenant,
                "policy": self.config.policy,
                "applied": self.applied,
                "checkpointed_at": self.checkpointed_at,
                "live_jobs": len(self.validator.live_job_ids),
                "machines": self.sim.builder.num_machines,
                "closed": self.closed,
                "slo_violations": self.slo_violations,
                "decision_seconds": round(self.decision_seconds, 6),
            }

    # -- checkpointing ---------------------------------------------------------

    def checkpoint_document(self) -> Dict[str, object]:
        """The event-sourced snapshot published through the store."""
        with self.lock:
            return {
                "format": _CHECKPOINT_FORMAT,
                "version": _CHECKPOINT_VERSION,
                "session_id": self.id,
                "config": self.config.to_dict(),
                "applied": self.applied,
                "closed": self.closed,
                "events": [trace_event_to_dict(e) for e in self.events],
            }

    @classmethod
    def from_checkpoint(cls, doc: Mapping[str, object], engine=None) -> "Session":
        """Rebuild a session by replaying its checkpointed event log."""
        if doc.get("format") != _CHECKPOINT_FORMAT:
            raise SessionValidationError("not a session checkpoint document")
        if doc.get("version") != _CHECKPOINT_VERSION:
            raise SessionValidationError(
                f"unsupported session checkpoint version {doc.get('version')!r}"
            )
        config = SessionConfig.from_dict(doc["config"])  # type: ignore[arg-type]
        session = cls(str(doc["session_id"]), config, engine=engine)
        rows = doc.get("events", [])
        session.apply(rows, first_offset=0)  # type: ignore[arg-type]
        if int(doc.get("applied", len(rows))) != session.applied:  # type: ignore[arg-type]
            raise SessionValidationError(
                f"checkpoint for {session.id} is internally inconsistent: "
                f"log length {session.applied} != recorded offset {doc.get('applied')}"
            )
        session.checkpointed_at = session.applied
        if doc.get("closed"):
            session.close()
        return session

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> Dict[str, object]:
        """Settle realized cost to the horizon end; the final report payload.

        Closing is idempotent — the settled report is kept and re-served.
        """
        with self.lock:
            if not self.closed:
                self.report = self.sim.settle()
                self.closed = True
            report = self.report
            assert report is not None
            return {
                "session_id": self.id,
                "applied": self.applied,
                "policy": report.policy,
                "arrivals": report.arrivals,
                "departures": report.departures,
                "early_departures": report.early_departures,
                "migrations": report.migrations,
                "replans": report.replans,
                "machines_opened": report.machines_opened,
                "realized_cost": report.realized_cost,
                "oracle_checks": report.oracle_checks,
                "closed": True,
            }


@dataclass(frozen=True)
class SessionLimits:
    """Admission caps for the session manager (any may be ``None`` = off)."""

    max_sessions: Optional[int] = 4096
    max_sessions_per_tenant: Optional[int] = 1024
    max_events_per_batch: Optional[int] = 10_000
    #: per-tenant sustained event rate (token bucket); None disables
    events_per_second: Optional[float] = None
    #: token-bucket burst capacity, in events
    burst: float = 1000.0


@dataclass
class _TokenBucket:
    rate: float
    capacity: float
    tokens: float
    last: float

    def take(self, amount: float, now: float) -> Optional[float]:
        """Deduct ``amount`` tokens; a retry-after hint when short."""
        self.tokens = min(self.capacity, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if amount <= self.tokens:
            self.tokens -= amount
            return None
        return max((amount - self.tokens) / self.rate, 1e-3)


class SessionManager:
    """Registry + admission + checkpointing for streaming sessions.

    Layered on a :class:`~busytime.service.SolveService` when given one —
    the engine, result store and drain state are shared, so ``drain()`` on
    the service refuses new sessions here too — but runs standalone (own
    store) for embedding and tests.

    ``time_fn`` feeds the per-tenant token buckets; tests inject a fake
    clock for deterministic rate-limit assertions.
    """

    def __init__(
        self,
        service: Optional[SolveService] = None,
        engine=None,
        store: Optional[ResultStore] = None,
        limits: Optional[SessionLimits] = None,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        self.service = service
        if engine is None and service is not None:
            engine = service.engine
        self.engine = engine
        if store is None:
            store = service.store if service is not None else ResultStore()
        self.store = store
        self.limits = limits if limits is not None else SessionLimits()
        self.time_fn = time_fn
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._buckets: Dict[str, _TokenBucket] = {}
        self._created = 0
        self._resumed = 0
        self._refreshed = 0
        self._events_applied = 0
        self._conflicts = 0
        self._rate_limited = 0
        self._checkpoints = 0
        self._closed_sessions = 0

    # -- admission helpers -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self.service.draining if self.service is not None else False

    def _checkpoint_key(self, session_id: str) -> str:
        return f"session-{session_id}"

    def _refuse_if_draining(self) -> None:
        if self.draining:
            raise ServiceDrainingError(
                "service is draining; open sessions elsewhere"
            )

    def _admit_create(self, tenant: str) -> None:
        limits = self.limits
        live = [s for s in self._sessions.values() if not s.closed]
        if limits.max_sessions is not None and len(live) >= limits.max_sessions:
            raise SessionLimitError(
                f"session count is at the cap of {limits.max_sessions}; "
                f"close sessions or retry later"
            )
        if limits.max_sessions_per_tenant is not None:
            mine = sum(1 for s in live if s.config.tenant == tenant)
            if mine >= limits.max_sessions_per_tenant:
                raise SessionLimitError(
                    f"tenant {tenant!r} is at its session cap of "
                    f"{limits.max_sessions_per_tenant}"
                )

    def _admit_events(self, tenant: str, count: int) -> None:
        limits = self.limits
        if (
            limits.max_events_per_batch is not None
            and count > limits.max_events_per_batch
        ):
            raise SessionLimitError(
                f"batch of {count} events is above the per-batch cap of "
                f"{limits.max_events_per_batch}; split it",
            )
        if limits.events_per_second is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            now = self.time_fn()
            if bucket is None:
                bucket = _TokenBucket(
                    rate=limits.events_per_second,
                    capacity=limits.burst,
                    tokens=limits.burst,
                    last=now,
                )
                self._buckets[tenant] = bucket
            hint = bucket.take(float(count), now)
        if hint is not None:
            with self._lock:
                self._rate_limited += 1
            raise SessionLimitError(
                f"tenant {tenant!r} is over its event rate of "
                f"{limits.events_per_second}/s; retry after {hint:.3g}s",
                retry_after=hint,
            )

    # -- lifecycle -------------------------------------------------------------

    def create(
        self,
        config: SessionConfig,
        session_id: Optional[str] = None,
    ) -> Session:
        """Admit and register a new session (checkpointed immediately)."""
        config.validate()
        self._refuse_if_draining()
        if session_id is None:
            session_id = uuid.uuid4().hex
        elif not ResultStore._DOC_KEY_OK(session_id):
            raise SessionValidationError(
                f"invalid session id {session_id!r} (want [A-Za-z0-9._-]+)"
            )
        with self._lock:
            if session_id in self._sessions:
                raise SessionValidationError(
                    f"session id {session_id!r} already exists"
                )
            self._admit_create(config.tenant)
            session = Session(session_id, config, engine=self.engine)
            self._sessions[session_id] = session
            self._created += 1
        # The empty checkpoint claims the id durably, so a failover owner
        # distinguishes "new, no events yet" from "never existed".
        self._write_checkpoint(session)
        return session

    def get(self, session_id: str) -> Session:
        """The live session, resumed from its checkpoint when unknown.

        Resume-on-miss is the failover handoff: a worker that inherits a
        shard finds the session id it never saw in the shared store and
        replays the event log into a fresh, identical session.

        A *known* session is still reconciled against the store: when a
        peer worker has checkpointed past this copy (the shard failed over
        and came back, or a stale replica is being read), the local copy is
        replaced by a replay of the durable log.  On one worker the
        checkpoint never runs ahead of its own session, so the check is a
        no-op outside genuine cross-worker handoffs.
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is not None:
            doc = self.store.get_document(self._checkpoint_key(session_id))
            stale = doc is not None and (
                int(doc.get("applied", 0)) > session.applied
                or (bool(doc.get("closed")) and not session.closed)
            )
            if not stale:
                return session
            fresh = Session.from_checkpoint(doc, engine=self.engine)
            with self._lock:
                if self._sessions.get(session_id) is session:
                    self._sessions[session_id] = fresh
                    self._refreshed += 1
                return self._sessions[session_id]
        doc = self.store.get_document(self._checkpoint_key(session_id))
        if doc is None:
            raise SessionNotFoundError(session_id)
        resumed = Session.from_checkpoint(doc, engine=self.engine)
        with self._lock:
            # A concurrent resume may have won the race; keep the winner so
            # both callers talk to one object.
            session = self._sessions.setdefault(session_id, resumed)
            if session is resumed:
                self._resumed += 1
        return session

    def apply_events(
        self,
        session_id: str,
        rows: Sequence[Mapping[str, object]],
        first_offset: Optional[int] = None,
    ) -> Dict[str, object]:
        """Admission-checked, checkpointed batch application."""
        self._refuse_if_draining()
        session = self.get(session_id)
        self._admit_events(session.config.tenant, len(rows))
        with session.lock:
            try:
                ack = session.apply(rows, first_offset=first_offset)
            except SessionConflictError:
                with self._lock:
                    self._conflicts += 1
                raise
            pending = session.applied - session.checkpointed_at
            if ack["accepted"] and pending >= session.config.checkpoint_every:
                # Durability before acknowledgement (the default cadence of
                # 1 checkpoints every batch): once the ack leaves, a killed
                # worker cannot take these events with it.
                self._write_checkpoint(session)
        with self._lock:
            self._events_applied += int(ack["accepted"])  # type: ignore[arg-type]
        return ack

    def assignment(self, session_id: str) -> Dict[str, object]:
        return self.get(session_id).assignment()

    def status(self, session_id: str) -> Dict[str, object]:
        return self.get(session_id).status()

    def close_session(self, session_id: str) -> Dict[str, object]:
        """Settle the session and publish its final checkpoint."""
        session = self.get(session_id)
        already = session.closed
        payload = session.close()
        self._write_checkpoint(session)
        if not already:
            with self._lock:
                self._closed_sessions += 1
        return payload

    def _write_checkpoint(self, session: Session) -> None:
        doc = session.checkpoint_document()
        self.store.put_document(self._checkpoint_key(session.id), doc)
        with session.lock:
            session.checkpointed_at = int(doc["applied"])  # type: ignore[arg-type]
        with self._lock:
            self._checkpoints += 1

    # -- introspection ---------------------------------------------------------

    def list_sessions(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.status() for s in sorted(sessions, key=lambda s: s.id)]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            live = sum(1 for s in self._sessions.values() if not s.closed)
            return {
                "sessions": len(self._sessions),
                "live": live,
                "created": self._created,
                "resumed": self._resumed,
                "refreshed": self._refreshed,
                "closed": self._closed_sessions,
                "events_applied": self._events_applied,
                "conflicts": self._conflicts,
                "rate_limited": self._rate_limited,
                "checkpoints": self._checkpoints,
                "slo_violations": sum(
                    s.slo_violations for s in self._sessions.values()
                ),
            }
