"""Certificates for the structural facts used in the FirstFit analysis (E10).

Figures 1–3 of the paper illustrate the machinery behind Theorem 2.1:

* **Observation 2.2** — if FirstFit assigns job ``J`` to machine ``M_i``
  (``i >= 2``), then on every earlier machine ``M_k`` there is a time
  ``t_{i,k}(J)`` inside ``J`` at which ``M_k`` runs ``g`` jobs, each at least
  as long as ``J``.
* **Lemma 2.3** — consequently ``len(J_i) >= (g/3) * span(J_{i+1})`` for
  every ``i``.

Both facts are *about FirstFit schedules*, not about arbitrary schedules, so
the experiment harness extracts the witnesses from an actual FirstFit run and
verifies them numerically; a failure would indicate a bug in the FirstFit
implementation (or in the paper!).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.intervals import Job, span, total_length
from ..core.schedule import Machine, Schedule

__all__ = [
    "Observation22Witness",
    "find_observation22_witness",
    "verify_observation22",
    "Lemma23Record",
    "lemma23_records",
    "verify_lemma23",
]


@dataclass(frozen=True)
class Observation22Witness:
    """A witness ``(t, S)`` for one ``(job, earlier machine)`` pair."""

    job_id: int
    machine_index: int
    earlier_machine_index: int
    time: float
    witness_job_ids: Tuple[int, ...]


def find_observation22_witness(
    job: Job, earlier_machine: Machine, g: int
) -> Optional[Observation22Witness]:
    """Find a time in ``job`` where ``earlier_machine`` runs ``g`` jobs no shorter.

    Returns ``None`` when no witness exists (which, for a genuine FirstFit
    schedule, never happens).
    """
    candidates: List[float] = [job.start, job.end]
    for other in earlier_machine.jobs:
        if other.start >= job.start and other.start <= job.end:
            candidates.append(other.start)
        if other.end >= job.start and other.end <= job.end:
            candidates.append(other.end)
    # Also probe midpoints between consecutive candidate coordinates in case a
    # maximal overlap region has no endpoint of its own inside the job.
    candidates = sorted(set(candidates))
    probes = list(candidates)
    for lo, hi in zip(candidates, candidates[1:]):
        probes.append((lo + hi) / 2.0)
    for t in probes:
        witnesses = [
            other
            for other in earlier_machine.jobs
            if other.active_at(t) and other.length >= job.length - 1e-12
        ]
        if len(witnesses) >= g:
            return Observation22Witness(
                job_id=job.id,
                machine_index=-1,  # filled in by the caller
                earlier_machine_index=earlier_machine.index,
                time=t,
                witness_job_ids=tuple(sorted(w.id for w in witnesses[:g])),
            )
    return None


def verify_observation22(schedule: Schedule) -> List[Observation22Witness]:
    """Verify Observation 2.2 on a FirstFit schedule; return all witnesses.

    Raises
    ------
    AssertionError
        if some (job, earlier machine) pair has no witness — this would mean
        the schedule was not produced by (a correct implementation of)
        FirstFit.
    """
    g = schedule.instance.g
    witnesses: List[Observation22Witness] = []
    machines = schedule.machines
    for i, machine in enumerate(machines):
        for k in range(i):
            earlier = machines[k]
            for job in machine.jobs:
                w = find_observation22_witness(job, earlier, g)
                if w is None:
                    raise AssertionError(
                        f"Observation 2.2 violated: job {job.id} on machine "
                        f"{machine.index} has no witness on machine {earlier.index}"
                    )
                witnesses.append(
                    Observation22Witness(
                        job_id=w.job_id,
                        machine_index=machine.index,
                        earlier_machine_index=earlier.index,
                        time=w.time,
                        witness_job_ids=w.witness_job_ids,
                    )
                )
    return witnesses


@dataclass(frozen=True)
class Lemma23Record:
    """The two sides of the Lemma 2.3 inequality for one machine index ``i``."""

    machine_index: int
    len_ji: float
    span_ji_plus_1: float
    g: int

    @property
    def lhs(self) -> float:
        return self.len_ji

    @property
    def rhs(self) -> float:
        return (self.g / 3.0) * self.span_ji_plus_1

    @property
    def holds(self) -> bool:
        return self.lhs >= self.rhs - 1e-9

    @property
    def slack(self) -> float:
        """How much room the inequality has (>= 0 when it holds)."""
        return self.lhs - self.rhs


def lemma23_records(schedule: Schedule) -> List[Lemma23Record]:
    """``len(J_i)`` vs ``(g/3) span(J_{i+1})`` for every consecutive machine pair."""
    records: List[Lemma23Record] = []
    machines = schedule.machines
    for i in range(len(machines) - 1):
        records.append(
            Lemma23Record(
                machine_index=machines[i].index,
                len_ji=total_length(machines[i].jobs),
                span_ji_plus_1=span(machines[i + 1].jobs),
                g=schedule.instance.g,
            )
        )
    return records


def verify_lemma23(schedule: Schedule) -> bool:
    """True when every Lemma 2.3 inequality holds on this (FirstFit) schedule."""
    return all(r.holds for r in lemma23_records(schedule))
