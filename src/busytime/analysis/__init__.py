"""Experiment harness: ratio measurement, certificates, sweeps and reporting."""

from .certificates import (
    Lemma23Record,
    Observation22Witness,
    find_observation22_witness,
    lemma23_records,
    verify_lemma23,
    verify_observation22,
)
from .experiments import ExperimentResult, ExperimentRunner, compare_algorithms
from .ratio import RatioMeasurement, measure, ratio_to_lower_bound, ratio_to_optimum
from .reporting import format_measurements, format_table, summarize_ratios

__all__ = [
    "RatioMeasurement",
    "measure",
    "ratio_to_lower_bound",
    "ratio_to_optimum",
    "ExperimentResult",
    "ExperimentRunner",
    "compare_algorithms",
    "format_table",
    "format_measurements",
    "summarize_ratios",
    "Observation22Witness",
    "find_observation22_witness",
    "verify_observation22",
    "Lemma23Record",
    "lemma23_records",
    "verify_lemma23",
]
