"""Parameter-sweep experiment runner shared by benchmarks and examples.

Every experiment in EXPERIMENTS.md boils down to the same loop: generate a
family of instances over a parameter grid, run one or more algorithms on each
and tabulate the costs / ratios.  :class:`ExperimentRunner` implements that
loop once — building a :class:`~busytime.engine.SolveRequest` per (instance,
algorithm) cell, handing it to the shared :class:`~busytime.engine.Engine`
and consuming the returned :class:`~busytime.engine.SolveReport` — so the
per-experiment benchmark modules only declare *what* to sweep, not *how*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..engine import Engine, SolveReport, SolveRequest
from ..exact import exact_optimal_cost
from .ratio import RatioMeasurement
from .reporting import format_table

__all__ = ["ExperimentResult", "ExperimentRunner", "compare_algorithms"]


@dataclass(frozen=True)
class ExperimentResult:
    """One (instance, algorithm) cell of an experiment grid."""

    instance_name: str
    algorithm: str
    params: Mapping[str, object]
    cost: float
    num_machines: int
    lower_bound: float
    optimum: Optional[float]
    runtime_seconds: float

    @property
    def ratio_lb(self) -> float:
        if self.lower_bound <= 0:
            return 1.0 if self.cost <= 0 else float("inf")
        return self.cost / self.lower_bound

    @property
    def ratio_opt(self) -> Optional[float]:
        if self.optimum is None or self.optimum <= 0:
            return None
        return self.cost / self.optimum

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = dict(self.params)
        row.update(
            {
                "instance": self.instance_name,
                "algorithm": self.algorithm,
                "cost": self.cost,
                "machines": self.num_machines,
                "lower_bound": self.lower_bound,
                "optimum": self.optimum,
                "ratio_lb": self.ratio_lb,
                "ratio_opt": self.ratio_opt,
                "runtime_s": self.runtime_seconds,
            }
        )
        return row


class ExperimentRunner:
    """Run algorithms over a grid of generated instances and tabulate results.

    ``algorithms`` maps a display label to any ``instance -> Schedule``
    callable; labels matching registry names are not required.  Each cell is
    executed through the engine, so per-cell timing, validation and the lower
    bound come from the :class:`~busytime.engine.SolveReport` rather than
    being re-implemented here.
    """

    def __init__(
        self,
        algorithms: Mapping[str, Callable[[Instance], Schedule]],
        compute_optimum: bool = False,
        max_jobs_for_optimum: int = 16,
        engine: Optional[Engine] = None,
    ) -> None:
        if not algorithms:
            raise ValueError("need at least one algorithm")
        self.algorithms = dict(algorithms)
        self.compute_optimum = compute_optimum
        self.max_jobs_for_optimum = max_jobs_for_optimum
        self.engine = engine or Engine()
        self.results: List[ExperimentResult] = []

    def run_instance(
        self, instance: Instance, params: Optional[Mapping[str, object]] = None
    ) -> List[ExperimentResult]:
        """Run every algorithm on one instance; results are accumulated."""
        params = dict(params or {})
        reports: List[Tuple[str, SolveReport]] = []
        for name, algorithm in self.algorithms.items():
            request = SolveRequest(instance=instance, algorithm=name)
            reports.append((name, self.engine.solve(request, scheduler=algorithm)))
        optimum: Optional[float] = None
        if self.compute_optimum and instance.n <= self.max_jobs_for_optimum:
            best_cost = min(report.cost for _, report in reports)
            optimum = exact_optimal_cost(
                instance,
                initial_upper_bound=best_cost,
                max_jobs=self.max_jobs_for_optimum,
            )
        new_results: List[ExperimentResult] = []
        for name, report in reports:
            result = ExperimentResult(
                instance_name=instance.name,
                algorithm=name,
                params=params,
                cost=report.cost,
                num_machines=report.num_machines,
                lower_bound=report.lower_bound,
                optimum=optimum,
                runtime_seconds=float(report.timings.get("schedule", 0.0)),
            )
            self.results.append(result)
            new_results.append(result)
        return new_results

    def run_grid(
        self,
        generator: Callable[..., Instance],
        grid: Sequence[Mapping[str, object]],
    ) -> List[ExperimentResult]:
        """Generate one instance per grid point and run every algorithm on it."""
        out: List[ExperimentResult] = []
        for params in grid:
            instance = generator(**params)
            out.extend(self.run_instance(instance, params))
        return out

    # -- reporting -------------------------------------------------------------

    def table(self, columns: Optional[Sequence[str]] = None, title: str = "") -> str:
        rows = [r.as_dict() for r in self.results]
        return format_table(rows, columns=columns, title=title or None)

    def _ratios(self, algorithm: str, against: str) -> List[float]:
        """All recorded ratios of one algorithm (vs "lb" or vs "opt")."""
        ratios: List[float] = []
        for r in self.results:
            if r.algorithm != algorithm:
                continue
            value = r.ratio_lb if against == "lb" else r.ratio_opt
            if value is not None:
                ratios.append(value)
        if not ratios:
            raise KeyError(f"no results recorded for algorithm {algorithm!r}")
        return ratios

    def worst_ratio(self, algorithm: str, against: str = "lb") -> float:
        """The worst observed ratio of one algorithm over all results."""
        return max(self._ratios(algorithm, against))

    def mean_ratio(self, algorithm: str, against: str = "lb") -> float:
        """The mean observed ratio of one algorithm over all results."""
        ratios = self._ratios(algorithm, against)
        return sum(ratios) / len(ratios)


def compare_algorithms(
    instance: Instance,
    algorithms: Mapping[str, Callable[[Instance], Schedule]],
    compute_optimum: bool = False,
) -> List[ExperimentResult]:
    """Convenience wrapper: run a head-to-head comparison on one instance."""
    runner = ExperimentRunner(algorithms, compute_optimum=compute_optimum)
    return runner.run_instance(instance)
