"""Approximation-ratio measurement.

The paper's guarantees are stated against OPT, which is NP-hard to compute.
Experiments therefore measure two different quantities and the reports always
say which one they show:

* ``ratio_to_optimum`` — the exact ratio ``ALG / OPT``; available when the
  instance is small enough for the branch-and-bound solver (or falls in a
  polynomial special case).
* ``ratio_to_lower_bound`` — ``ALG / LB`` where ``LB`` is the best lower
  bound of :mod:`busytime.core.bounds`.  Because ``LB <= OPT`` this value
  *over*-estimates the true ratio, so an algorithm observed under its proven
  guarantee against LB is certainly under it against OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.bounds import best_lower_bound
from ..core.instance import Instance
from ..core.objectives import CostModel, get_cost_model
from ..core.schedule import Schedule
from ..exact import exact_optimal_cost

__all__ = [
    "RatioMeasurement",
    "ratio_to_lower_bound",
    "ratio_to_optimum",
    "measure",
]


@dataclass(frozen=True)
class RatioMeasurement:
    """One algorithm's result on one instance, with every reference value.

    ``cost``, ``lower_bound`` and ``optimum`` are all priced under the same
    :class:`~busytime.core.objectives.CostModel` (the default ``busy_time``
    model reproduces the seed numbers exactly), recorded in ``objective``.
    """

    instance_name: str
    algorithm: str
    n: int
    g: int
    cost: float
    num_machines: int
    lower_bound: float
    optimum: Optional[float]
    objective: str = "busy_time"

    @property
    def ratio_lb(self) -> float:
        """``cost / lower_bound`` (an upper bound on the true ratio)."""
        if self.lower_bound <= 0:
            return 1.0 if self.cost <= 0 else float("inf")
        return self.cost / self.lower_bound

    @property
    def ratio_opt(self) -> Optional[float]:
        """``cost / OPT`` when the exact optimum is known."""
        if self.optimum is None:
            return None
        if self.optimum <= 0:
            return 1.0 if self.cost <= 0 else float("inf")
        return self.cost / self.optimum

    def as_dict(self) -> Dict[str, object]:
        return {
            "instance": self.instance_name,
            "algorithm": self.algorithm,
            "n": self.n,
            "g": self.g,
            "cost": self.cost,
            "machines": self.num_machines,
            "lower_bound": self.lower_bound,
            "optimum": self.optimum,
            "ratio_lb": self.ratio_lb,
            "ratio_opt": self.ratio_opt,
            "objective": self.objective,
        }


def ratio_to_lower_bound(schedule: Schedule) -> float:
    """``schedule.cost / best_lower_bound(instance)``."""
    lb = best_lower_bound(schedule.instance)
    if lb <= 0:
        return 1.0 if schedule.total_busy_time <= 0 else float("inf")
    return schedule.total_busy_time / lb


def ratio_to_optimum(schedule: Schedule, max_jobs: int = 18) -> float:
    """``schedule.cost / OPT`` with OPT computed exactly (small instances only)."""
    opt = exact_optimal_cost(
        schedule.instance,
        initial_upper_bound=schedule.total_busy_time,
        max_jobs=max_jobs,
    )
    if opt <= 0:
        return 1.0 if schedule.total_busy_time <= 0 else float("inf")
    return schedule.total_busy_time / opt


def measure(
    instance: Instance,
    algorithm: Callable[[Instance], Schedule],
    compute_optimum: bool = False,
    max_jobs_for_optimum: int = 18,
    cost_model: Optional[CostModel] = None,
) -> RatioMeasurement:
    """Run ``algorithm`` on ``instance`` and collect every reference value.

    ``cost_model`` prices cost, lower bound and (when it preserves busy-time
    ratios) the exact optimum; omitted, the default ``busy_time`` model
    reproduces the seed measurement exactly.
    """
    model = cost_model if cost_model is not None else get_cost_model("busy_time")
    schedule = algorithm(instance)
    schedule.validate()
    optimum: Optional[float] = None
    if (
        compute_optimum
        and instance.n <= max_jobs_for_optimum
        and model.preserves_busy_time_ratios
    ):
        optimum = exact_optimal_cost(
            instance,
            initial_upper_bound=schedule.total_busy_time,
            max_jobs=max_jobs_for_optimum,
        )
        optimum = model.price_busy_time(optimum)
    return RatioMeasurement(
        instance_name=instance.name,
        algorithm=schedule.algorithm,
        n=instance.n,
        g=instance.g,
        cost=model.schedule_cost(schedule),
        num_machines=schedule.num_machines,
        lower_bound=model.lower_bound(instance),
        optimum=optimum,
        objective=model.objective,
    )
