"""Local-search post-optimisation of schedules.

The paper's algorithms are one-shot constructions chosen for their provable
worst-case factors; a practical deployment would follow them with a cheap
improvement pass.  This module provides one that preserves every guarantee
(it never increases the cost and never breaks feasibility), so
``improve(first_fit(inst))`` is still a 4-approximation — usually a visibly
better one.

Two move types are applied until a local optimum or the iteration budget is
reached:

* **relocate** — move a single job to another machine when that strictly
  decreases the sum of the two machines' busy times;
* **machine merge** — move *all* jobs of one machine onto another when the
  combined set is feasible; this can only help (the union's span is at most
  the sum of the spans) and empties a machine;
* **swap** — exchange one job between two machines when both stay feasible
  and the summed busy time strictly decreases.

Note that even with swaps the neighbourhood is limited: the Fig. 4 FirstFit
schedule of Theorem 2.4 is a *local optimum* of all three move types (every
improving rearrangement requires moving several jobs at once), so local
search does not invalidate the paper's lower-bound family — the test suite
pins that fact down.

Moves are evaluated exactly (span recomputed from the affected machines
only), so the cost reported after the pass is exact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.instance import Instance
from ..core.intervals import Interval, Job, max_point_load, span
from ..core.schedule import Machine, Schedule
from .base import FunctionScheduler, register_scheduler
from .first_fit import first_fit

__all__ = ["improve", "local_search_first_fit", "LocalSearchResult"]


def _feasible(jobs: List[Job], g: int) -> bool:
    return max_point_load(jobs) <= g


def _fits_with(existing: List[Job], job: Job, g: int) -> bool:
    clipped: List[Interval] = []
    for other in existing:
        inter = other.interval.intersection(job.interval)
        if inter is not None:
            clipped.append(inter)
    if len(clipped) < g:
        return True
    return max_point_load(clipped) <= g - 1


class LocalSearchResult:
    """Bookkeeping returned in the improved schedule's ``meta``."""

    def __init__(self) -> None:
        self.relocations = 0
        self.merges = 0
        self.swaps = 0
        self.rounds = 0
        self.initial_cost = 0.0
        self.final_cost = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "relocations": self.relocations,
            "merges": self.merges,
            "swaps": self.swaps,
            "rounds": self.rounds,
            "initial_cost": self.initial_cost,
            "final_cost": self.final_cost,
        }


def improve(
    schedule: Schedule,
    max_rounds: int = 50,
    tolerance: float = 1e-9,
) -> Schedule:
    """Improve a feasible schedule by relocations and machine merges.

    The returned schedule is feasible, costs at most as much as the input and
    carries the original algorithm name suffixed with ``+ls`` plus the move
    statistics in ``meta['local_search']``.
    """
    schedule.validate()
    g = schedule.instance.g
    machines: List[List[Job]] = [list(m.jobs) for m in schedule.machines]
    stats = LocalSearchResult()
    stats.initial_cost = schedule.total_busy_time

    improved = True
    while improved and stats.rounds < max_rounds:
        improved = False
        stats.rounds += 1

        # --- machine merges -------------------------------------------------
        for src in range(len(machines)):
            if not machines[src]:
                continue
            for dst in range(len(machines)):
                if src == dst or not machines[dst]:
                    continue
                combined = machines[dst] + machines[src]
                if not _feasible(combined, g):
                    continue
                before = span(machines[src]) + span(machines[dst])
                after = span(combined)
                if after <= before - tolerance:
                    machines[dst] = combined
                    machines[src] = []
                    stats.merges += 1
                    improved = True
                    break

        # --- single-job relocations ------------------------------------------
        for src in range(len(machines)):
            if not machines[src]:
                continue
            for job in list(machines[src]):
                rest = [j for j in machines[src] if j.id != job.id]
                src_before = span(machines[src])
                src_after = span(rest)
                gain_from_src = src_before - src_after
                if gain_from_src <= tolerance:
                    continue  # removing the job does not shrink the source
                best_dst: Optional[int] = None
                best_delta = -tolerance
                for dst in range(len(machines)):
                    if dst == src or not machines[dst]:
                        continue
                    if not _fits_with(machines[dst], job, g):
                        continue
                    dst_before = span(machines[dst])
                    dst_after = span(machines[dst] + [job])
                    delta = gain_from_src - (dst_after - dst_before)
                    if delta > best_delta + tolerance:
                        best_delta = delta
                        best_dst = dst
                if best_dst is not None and best_delta > tolerance:
                    machines[src] = rest
                    machines[best_dst] = machines[best_dst] + [job]
                    stats.relocations += 1
                    improved = True

        # --- pairwise swaps ----------------------------------------------------
        for a_idx in range(len(machines)):
            if not machines[a_idx]:
                continue
            for b_idx in range(a_idx + 1, len(machines)):
                if not machines[b_idx]:
                    continue
                before = span(machines[a_idx]) + span(machines[b_idx])
                done_with_pair = False
                for job_a in list(machines[a_idx]):
                    if done_with_pair:
                        break
                    for job_b in list(machines[b_idx]):
                        new_a = [j for j in machines[a_idx] if j.id != job_a.id] + [job_b]
                        new_b = [j for j in machines[b_idx] if j.id != job_b.id] + [job_a]
                        if not _feasible(new_a, g) or not _feasible(new_b, g):
                            continue
                        after = span(new_a) + span(new_b)
                        if after <= before - tolerance:
                            machines[a_idx] = new_a
                            machines[b_idx] = new_b
                            stats.swaps += 1
                            improved = True
                            done_with_pair = True
                            break

    final_machines = tuple(
        Machine(index=i, jobs=tuple(jobs))
        for i, jobs in enumerate(m for m in machines if m)
    )
    stats.final_cost = sum(span(m.jobs) for m in final_machines)
    result = Schedule(
        instance=schedule.instance,
        machines=final_machines,
        algorithm=(schedule.algorithm + "+ls") if schedule.algorithm else "local_search",
        meta={**dict(schedule.meta), "local_search": stats.as_dict()},
    )
    result.validate()
    # Local search must never make things worse.
    assert result.total_busy_time <= schedule.total_busy_time + 1e-6
    return result


def local_search_first_fit(instance: Instance) -> Schedule:
    """FirstFit followed by the improvement pass (still a 4-approximation)."""
    return improve(first_fit(instance))


# Not demand-aware: the move evaluation (`_feasible` / `_fits_with`) counts
# job cardinality, so an improving move could overload a capacity-g machine
# under non-unit demands; the selection policies keep demand instances away.
register_scheduler(
    FunctionScheduler(
        local_search_first_fit,
        name="first_fit_ls",
        approximation_ratio=4.0,
        instance_class="general",
        paper_section="Section 2 + post-optimisation",
        anytime=True,
        selection_priority=90,
        portfolio_member=False,
        supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
    )
)
