"""Placement-aware scheduling: flex windows, site capacity, tariffs.

Two algorithms extend the paper's *packing* view (fixed intervals, pick a
machine) to the *placement* view of the flex model (pick a start time
inside ``[release, deadline]`` too, under a time-varying tariff and a
site-wide capacity cap):

``placement_first_fit``
    FirstFit in the paper's longest-first order, but each job tries a
    small deterministic set of candidate starts — the window edges plus
    positions aligned to the tariff's band boundaries — cheapest tariff
    price first, lowest machine index per candidate.  On zero-slack
    instances the candidate set collapses to the nominal start and the
    decisions (order, fits queries, machine indices) are exactly
    :func:`~busytime.algorithms.first_fit.first_fit`'s.

``tariff_local_search``
    starts from ``placement_first_fit`` and greedily applies strict-
    improvement *slide-within-window* and *reassign* moves (including
    onto a freshly opened machine, which can pay off under activation
    pricing or a strongly banded tariff) until a fixed point or the
    round budget.  Deterministic: jobs in id order, candidates in
    (price, start) order, machines in index order.

Both receive the request's resolved cost model through
:meth:`~busytime.algorithms.base.Scheduler.schedule_under` — the tariff
travels on the model, not the instance — and neither claims a proven
ratio: the fixed-interval guarantees do not transfer to an optimum that
may slide jobs (see ``AlgorithmInfo.window_aware``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.intervals import Interval, Job, max_point_demand, union_intervals
from ..core.objectives import CostModel
from ..core.schedule import InfeasibleScheduleError, Schedule, ScheduleBuilder
from ..pricing.series import TariffSeries
from .base import FunctionScheduler, register_scheduler
from .first_fit import first_fit_order

__all__ = [
    "candidate_starts",
    "place_first_fit",
    "tariff_local_search",
    "PlacementFirstFitScheduler",
    "TariffLocalSearchScheduler",
]

#: Strict-improvement threshold for local-search moves: deltas closer to
#: zero than this are treated as ties (float noise), keeping the search a
#: finite descent.
IMPROVEMENT_EPS = 1e-9

#: Default bound on full improvement rounds of the local search.
MAX_ROUNDS = 6


def _tariff_of(model: Optional[CostModel]) -> Optional[TariffSeries]:
    """The placement-relevant tariff of a model, or None when flat.

    A constant tariff prices every start identically, so for *placement*
    purposes it is indistinguishable from no tariff at all.
    """
    if model is None or model.tariff is None or model.tariff.is_constant:
        return None
    return model.tariff


def candidate_starts(
    job: Job,
    tariff: Optional[TariffSeries],
    extra_points: Sequence[float] = (),
) -> List[float]:
    """The deterministic candidate start positions for one job.

    Window edges always; under a banded tariff additionally the positions
    that align the job's start or end with a band boundary inside the
    window (clamped to feasible starts), and likewise for any
    ``extra_points`` — the background-load breakpoints, where site
    capacity jumps.  A fixed job has exactly its nominal start.  Some
    optimal placement always uses one of these positions for an isolated
    job — sliding inside a band changes nothing until an endpoint crosses
    a boundary.
    """
    if not job.has_window:
        return [job.interval.start]
    earliest = job.window_release
    latest = job.window_deadline - job.length
    cands = {earliest, latest}
    boundaries = list(tariff.breakpoints) if tariff is not None else []
    boundaries.extend(extra_points)
    for b in boundaries:
        if earliest < b < job.window_deadline:
            cands.add(min(max(b, earliest), latest))
            cands.add(min(max(b - job.length, earliest), latest))
    return sorted(cands)


def _extra_points(instance: Instance) -> Tuple[float, ...]:
    """Alignment points beyond the tariff: background-load breakpoints."""
    if instance.background is None:
        return ()
    return tuple(instance.background.breakpoints)


def _placements(
    job: Job,
    tariff: Optional[TariffSeries],
    extra_points: Sequence[float] = (),
) -> List[Job]:
    """Candidate placements of ``job``, cheapest tariff price first.

    Ties break on start time (earliest wins), so without a banded tariff
    this is simply earliest-first.
    """
    out: List[Tuple[float, float, Job]] = []
    for s in candidate_starts(job, tariff, extra_points):
        placed = job.placed_at(s) if job.has_window else job
        price = (
            tariff.integrate(placed.start, placed.end) if tariff is not None else 0.0
        )
        out.append((price, placed.start, placed))
    out.sort(key=lambda t: (t[0], t[1]))
    return [p for _, _, p in out]


def place_first_fit(
    instance: Instance, model: Optional[CostModel] = None
) -> Schedule:
    """Placement-aware FirstFit (see module docstring).

    Raises :class:`~busytime.core.schedule.InfeasibleScheduleError` when
    the site-wide capacity cap admits no candidate placement of some job
    even on a fresh machine (a cap can make instances genuinely
    infeasible).
    """
    tariff = _tariff_of(model)
    extras = _extra_points(instance)
    builder = ScheduleBuilder(instance, algorithm="placement_first_fit")
    order = first_fit_order(instance.jobs)
    for job in order:
        placements = _placements(job, tariff, extras)
        assigned = False
        for placed in placements:
            idx = builder.first_fitting_machine(placed)
            if idx is not None:
                builder.assign(idx, placed)
                assigned = True
                break
        if not assigned:
            for placed in placements:
                if builder.site_fits(placed):
                    builder.assign(builder.open_machine(), placed)
                    assigned = True
                    break
        if not assigned:
            raise InfeasibleScheduleError(
                f"no placement of job {job.id} fits under the site capacity "
                f"cap {instance.site_capacity}"
            )
    builder.meta["processing_order"] = [j.id for j in order]
    return builder.freeze()


# ---------------------------------------------------------------------------
# Tariff-aware local search
# ---------------------------------------------------------------------------


def _busy_measure(jobs: Sequence[Job], tariff: Optional[TariffSeries]) -> float:
    """The (tariff-priced) busy measure of one machine's job list."""
    total = 0.0
    for iv in union_intervals(jobs):
        if tariff is None:
            total += iv.length
        else:
            total += tariff.integrate(iv.start, iv.end)
    return total


def _machine_cost(
    jobs: Sequence[Job], model: CostModel, tariff: Optional[TariffSeries]
) -> float:
    """Full model cost of one machine (0 when empty)."""
    if not jobs:
        return 0.0
    return model.machine_cost(_busy_measure(jobs, tariff))


def _machine_feasible(jobs: Sequence[Job], extra: Job, g: int) -> bool:
    return max_point_demand(list(jobs) + [extra]) <= g


def _site_feasible(
    machines: Sequence[Sequence[Job]], extra: Job, instance: Instance
) -> bool:
    """Oracle site check for a candidate move (all placed jobs + background)."""
    if instance.site_capacity is None:
        return True
    items: List[Job] = [j for m in machines for j in m]
    items.append(extra)
    if instance.background is not None:
        fake = -1
        for lo, hi, level in instance.background.bands():
            items.append(Job(id=fake, interval=Interval(lo, hi), demand=level))
            fake -= 1
    return max_point_demand(items) <= instance.site_capacity


def tariff_local_search(
    instance: Instance,
    model: Optional[CostModel] = None,
    max_rounds: int = MAX_ROUNDS,
) -> Schedule:
    """Slide-within-window + reassign local search (see module docstring)."""
    resolved = model if model is not None else CostModel()
    tariff = _tariff_of(resolved)
    extras = _extra_points(instance)
    base = place_first_fit(instance, model)
    if not instance.has_windows and tariff is None:
        # Nothing to slide and every machine choice is price-flat; the
        # first-fit placement is already the fixed point this search reaches.
        return base
    machines: List[List[Job]] = [list(m.jobs) for m in base.machines]
    costs: List[float] = [_machine_cost(m, resolved, tariff) for m in machines]
    job_ids = sorted(j.id for j in instance.jobs)

    def locate(job_id: int) -> Tuple[int, int]:
        for mi, mjobs in enumerate(machines):
            for pos, j in enumerate(mjobs):
                if j.id == job_id:
                    return mi, pos
        raise KeyError(job_id)

    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for job_id in job_ids:
            mi, pos = locate(job_id)
            current = machines[mi][pos]
            rest = machines[mi][:pos] + machines[mi][pos + 1 :]
            rest_cost = _machine_cost(rest, resolved, tariff)
            release_gain = costs[mi] - rest_cost
            # Candidate targets: every existing machine (with the job
            # removed from its own) plus one fresh machine.
            best_delta = 0.0
            best_move: Optional[Tuple[int, Job]] = None
            others = [rest if k == mi else machines[k] for k in range(len(machines))]
            for placed in _placements(current, tariff, extras):
                if not _site_feasible(others, placed, instance):
                    continue
                for k in range(len(machines) + 1):
                    target = others[k] if k < len(machines) else []
                    if k == mi and placed.interval == current.interval:
                        continue
                    if not _machine_feasible(target, placed, instance.g):
                        continue
                    target_cost = rest_cost if k == mi else costs[k] if k < len(machines) else 0.0
                    with_cost = _machine_cost(list(target) + [placed], resolved, tariff)
                    delta = (with_cost - target_cost) - release_gain
                    if delta < best_delta - IMPROVEMENT_EPS:
                        best_delta = delta
                        best_move = (k, placed)
            if best_move is not None:
                k, placed = best_move
                machines[mi] = rest
                costs[mi] = rest_cost
                if k == len(machines):
                    machines.append([placed])
                    costs.append(_machine_cost([placed], resolved, tariff))
                else:
                    machines[k] = machines[k] + [placed]
                    costs[k] = _machine_cost(machines[k], resolved, tariff)
                improved = True

    builder = ScheduleBuilder(instance, algorithm="tariff_local_search")
    for mjobs in machines:
        if mjobs:
            idx = builder.open_machine()
            for j in mjobs:
                builder.assign(idx, j)
    builder.meta["rounds"] = rounds
    builder.meta["start_algorithm"] = "placement_first_fit"
    return builder.freeze()


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


class _ModelAwareScheduler(FunctionScheduler):
    """A FunctionScheduler whose function accepts the resolved cost model."""

    def schedule_under(self, instance: Instance, model=None) -> Schedule:
        return self._func(instance, model)

    def handles(self, instance: Instance, objective: str = "busy_time") -> bool:
        # Flex-only: on a rigid instance every placement degenerates to
        # plain FirstFit, so joining the rigid portfolio would only re-run
        # the same schedule under a different name (and change portfolio
        # histories/timings the rigid paths pin bit for bit).
        return instance.is_flex and super().handles(instance, objective)


PlacementFirstFitScheduler = _ModelAwareScheduler(
    place_first_fit,
    name="placement_first_fit",
    approximation_ratio=None,
    instance_class="general",
    paper_section="flex extension",
    instance_classes=("general",),
    selection_priority=45,
    supported_objectives=(
        "busy_time",
        "weighted_busy_time",
        "machines_plus_busy",
        "tariff_busy_time",
    ),
    demand_aware=True,
    window_aware=True,
    tariff_aware=True,
)

TariffLocalSearchScheduler = _ModelAwareScheduler(
    tariff_local_search,
    name="tariff_local_search",
    approximation_ratio=None,
    instance_class="general",
    paper_section="flex extension",
    instance_classes=("general",),
    anytime=True,
    selection_priority=50,
    supported_objectives=(
        "busy_time",
        "weighted_busy_time",
        "machines_plus_busy",
        "tariff_busy_time",
    ),
    demand_aware=True,
    window_aware=True,
    tariff_aware=True,
)

register_scheduler(PlacementFirstFitScheduler)
register_scheduler(TariffLocalSearchScheduler)
