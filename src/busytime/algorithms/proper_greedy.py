"""Greedy (NextFit) algorithm for proper interval graphs (Section 3.1).

For instances where no job interval is properly contained in another —
*proper interval graphs* — the paper gives a simple two-step greedy:

1. sort the jobs by start time (for proper instances this is simultaneously
   the completion-time order);
2. scan the jobs in that order and add each to the *currently filled*
   machine, unless doing so would create a ``(g+1)``-clique on it, in which
   case a new machine is opened and becomes the currently filled one.

**Theorem 3.1** proves this is a 2-approximation; the proof in fact shows the
stronger inequality ``ALG(J) <= OPT(J) + span(J)``, which our experiment E5
verifies directly (it is tighter whenever ``span(J) < OPT(J)``).

The feasibility test "adding the job forms a (g+1)-clique" is answered by
the currently filled machine's maintained sweep-line profile
(:class:`~busytime.core.events.SweepProfile`): the peak load inside the new
job's window must be at most ``g - 1``.  For a proper instance scanned in
start order that query degenerates to a single bisection at the job's start
(properness means no earlier job ends before one that started later), and
it stays correct — albeit without the ratio guarantee — when handed a
non-proper instance.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule, ScheduleBuilder
from .base import FunctionScheduler, register_scheduler

__all__ = ["proper_greedy", "ProperGreedyScheduler"]


def proper_greedy(instance: Instance, strict: bool = False) -> Schedule:
    """Schedule with the Section 3.1 NextFit greedy.

    Parameters
    ----------
    instance:
        The instance to schedule.  The 2-approximation guarantee of
        Theorem 3.1 holds when the instance is proper; the schedule produced
        for non-proper instances is still feasible.
    strict:
        When True, raise ``ValueError`` if the instance is not proper instead
        of silently falling back to the guarantee-free behaviour.
    """
    if strict and not instance.is_proper():
        raise ValueError(
            "proper_greedy(strict=True) requires a proper interval instance"
        )
    builder = ScheduleBuilder(instance, algorithm="proper_greedy")
    order = sorted(instance.jobs, key=lambda j: (j.start, j.end, j.id))
    current: Optional[int] = None
    for job in order:
        if current is None or not builder.fits(current, job):
            current = builder.open_machine()
        builder.assign(current, job)
    builder.meta["proper_instance"] = instance.is_proper()
    return builder.freeze()


class ProperGreedyScheduler(FunctionScheduler):
    """NextFit by start time; 2-approximation on proper interval instances."""

    def __init__(self) -> None:
        super().__init__(
            proper_greedy,
            name="proper_greedy",
            approximation_ratio=2.0,
            instance_class="proper",
            paper_section="Section 3.1",
            instance_classes=("proper",),
            selection_priority=20,
            # Ratio guarantees survive a positive rescaling of busy time;
            # Theorem 3.1's charging argument is only proved for the rigid
            # (unit-demand) model, so the algorithm stays non-demand-aware.
            supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        )


register_scheduler(ProperGreedyScheduler())
