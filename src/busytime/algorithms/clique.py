"""Scheduling algorithm for cliques (Appendix of the paper).

When every pair of job intervals intersects the interval graph is a clique
and, by the Helly property, all jobs share a common point ``t``.  The
Appendix algorithm:

1. pick any common point ``t``; for each job ``j`` let
   ``delta_j = max(t - s_j, c_j - t)`` be the farthest distance of one of its
   endpoints from ``t`` (Fig. 5's left–right partition);
2. sort the jobs by non-increasing ``delta_j``;
3. fill machines greedily with ``g`` jobs each in that order (the last
   machine may receive fewer).

**Theorem A.1** shows the resulting total busy time is at most ``2 * OPT``:
machine ``i``'s busy interval is contained in ``[t - delta^i_A, t + delta^i_A]``
where ``delta^i_A`` is the largest distance among its jobs, and the sorted
distances majorise the corresponding quantities of any optimal solution.

The paper notes (Section 1.3) that a 2-approximation for cliques had already
appeared in [8]; this algorithm and its analysis are different and are the
ones reproduced here.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule, ScheduleBuilder
from .base import FunctionScheduler, register_scheduler

__all__ = ["clique_schedule", "clique_deltas", "CliqueScheduler"]


def clique_deltas(instance: Instance, t: Optional[float] = None) -> List[float]:
    """The distances ``delta_j`` from the common point, in job order.

    ``t`` defaults to a common point of all intervals; a ``ValueError`` is
    raised when the instance is not a clique and no explicit ``t`` is given.
    """
    if t is None:
        t = instance.common_point()
        if t is None:
            raise ValueError("instance is not a clique: no common point exists")
    return [max(t - j.start, j.end - t) for j in instance.jobs]


def clique_schedule(instance: Instance, strict: bool = True) -> Schedule:
    """Schedule a clique instance with the Appendix algorithm.

    Parameters
    ----------
    instance:
        A pairwise-intersecting instance.  With ``strict=True`` (default) a
        ``ValueError`` is raised when the instance is not a clique.  With
        ``strict=False`` the same grouping is applied around the densest
        point of the instance; the schedule is still feasible (a machine
        receiving at most ``g`` jobs can never exceed parallelism ``g``) but
        the 2-approximation guarantee does not transfer.  Use the dispatcher
        for general instances.
    """
    t = instance.common_point()
    if t is None:
        if strict:
            raise ValueError("clique_schedule requires a pairwise-intersecting instance")
        # Densest point: midpoint of a maximum-load piece of the load profile.
        from ..core.events import load_profile  # local import to avoid cycle

        profile = load_profile(list(instance.jobs))
        if profile:
            lo, hi, _ = max(profile, key=lambda p: p[2])
            t = (lo + hi) / 2.0
        else:
            t = 0.0

    deltas = clique_deltas(instance, t)
    order = sorted(
        zip(instance.jobs, deltas), key=lambda pair: (-pair[1], pair[0].id)
    )
    builder = ScheduleBuilder(instance, algorithm="clique")
    g = instance.g
    for block_start in range(0, len(order), g):
        block = [job for job, _ in order[block_start : block_start + g]]
        builder.assign_new_machine(block)
    builder.meta["common_point"] = t
    builder.meta["deltas"] = dict(
        zip((j.id for j in instance.jobs), deltas)
    )
    return builder.freeze()


def _clique_schedule_lenient(instance: Instance) -> Schedule:
    """Registry entry point: the Appendix grouping, never rejecting the input.

    The 2-approximation guarantee only applies to clique instances; on other
    instances the produced schedule is merely feasible.
    """
    return clique_schedule(instance, strict=False)


class CliqueScheduler(FunctionScheduler):
    """Farthest-endpoint grouping; 2-approximation on clique instances."""

    def __init__(self) -> None:
        super().__init__(
            _clique_schedule_lenient,
            name="clique",
            approximation_ratio=2.0,
            instance_class="clique",
            paper_section="Appendix",
            instance_classes=("clique",),
            selection_priority=10,
            supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        )


register_scheduler(CliqueScheduler())
