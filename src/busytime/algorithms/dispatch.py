"""Automatic algorithm selection.

The paper proves different ratios for different instance classes; a user who
just wants "the best schedule this package can produce" should not need to
classify their instance by hand.  :func:`auto_schedule` does that:

1. split the instance into connected components (always valid);
2. per component, detect the structural class (clique → Appendix algorithm,
   proper → Section 3.1 greedy, everything fits on one machine → trivial,
   otherwise FirstFit and, when the length ratio is small, Bounded_Length);
3. optionally run a portfolio of applicable algorithms and keep the cheapest
   schedule (``portfolio=True``), which can only help since every candidate
   is feasible.

The per-component best proven ratio is recorded in the returned schedule's
``meta`` so experiment reports can show which guarantee applies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.instance import Instance, connected_components
from ..core.schedule import Machine, Schedule
from .base import FunctionScheduler, register_scheduler
from .bounded_length import bounded_length
from .clique import clique_schedule
from .first_fit import first_fit
from .proper_greedy import proper_greedy

__all__ = ["auto_schedule", "select_algorithm", "AutoScheduler"]

#: Length-ratio threshold below which Bounded_Length joins the portfolio.
_BOUNDED_LENGTH_RATIO = 8.0


def select_algorithm(instance: Instance) -> str:
    """Name of the specialised algorithm with the best proven ratio."""
    if instance.n == 0:
        return "first_fit"
    if instance.clique_number <= instance.g:
        return "single_machine"
    if instance.is_clique():
        return "clique"
    if instance.is_proper():
        return "proper_greedy"
    ratio = instance.length_ratio()
    if ratio != float("inf") and ratio <= _BOUNDED_LENGTH_RATIO:
        return "bounded_length"
    return "first_fit"


def _schedule_component(
    component: Instance, portfolio: bool
) -> Tuple[str, Schedule]:
    choice = select_algorithm(component)
    candidates: List[Tuple[str, Schedule]] = []

    if choice == "single_machine":
        # Everything fits on one machine: that machine costs span(J), which
        # matches the span lower bound and is therefore optimal.
        machines = (Machine(index=0, jobs=component.jobs),)
        sched = Schedule(
            instance=component,
            machines=machines,
            algorithm="single_machine",
            meta={"optimal": True},
        )
        sched.validate()
        return "single_machine", sched

    if choice == "clique":
        candidates.append(("clique", clique_schedule(component)))
    if choice == "proper_greedy" or (portfolio and component.is_proper()):
        candidates.append(("proper_greedy", proper_greedy(component)))
    if choice == "bounded_length" or portfolio:
        ratio = component.length_ratio()
        if ratio != float("inf") and ratio <= _BOUNDED_LENGTH_RATIO:
            candidates.append(("bounded_length", bounded_length(component)))
    # FirstFit is always applicable and is the guarantee of last resort.
    candidates.append(("first_fit", first_fit(component)))

    name, best = min(candidates, key=lambda c: c[1].total_busy_time)
    return name, best


def auto_schedule(instance: Instance, portfolio: bool = True) -> Schedule:
    """Schedule ``instance`` with the best applicable algorithm per component.

    Parameters
    ----------
    instance:
        Any instance.
    portfolio:
        When True (default) all applicable algorithms are run per component
        and the cheapest feasible schedule is kept; when False only the
        single algorithm chosen by :func:`select_algorithm` runs.
    """
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="auto")

    machines: List[Machine] = []
    per_component: List[Dict[str, object]] = []
    for component in connected_components(instance):
        name, sched = _schedule_component(component, portfolio)
        per_component.append(
            {
                "component": component.name,
                "n": component.n,
                "algorithm": name,
                "cost": sched.total_busy_time,
            }
        )
        for m in sched.machines:
            machines.append(Machine(index=len(machines), jobs=m.jobs))

    result = Schedule(
        instance=instance,
        machines=tuple(machines),
        algorithm="auto",
        meta={"components": per_component, "portfolio": portfolio},
    )
    result.validate()
    return result


class AutoScheduler(FunctionScheduler):
    """Dispatching scheduler: best applicable algorithm per connected component."""

    def __init__(self) -> None:
        super().__init__(
            auto_schedule,
            name="auto",
            approximation_ratio=4.0,
            instance_class="general",
            paper_section="Sections 2, 3, Appendix",
        )


register_scheduler(AutoScheduler())
