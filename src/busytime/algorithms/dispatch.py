"""Automatic algorithm selection (thin wrapper over :mod:`busytime.engine`).

The paper proves different ratios for different instance classes; a user who
just wants "the best schedule this package can produce" should not need to
classify their instance by hand.  :func:`auto_schedule` keeps that historical
one-call API, but the orchestration itself — component splitting, capability
lookup, the per-component portfolio — lives in the engine
(:class:`busytime.engine.Engine`), which all entry points now share.  Use the
engine directly when you also want the lower bounds, the per-component
decisions and the proven-ratio certificate instead of a bare schedule.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.schedule import Schedule
from .base import FunctionScheduler, register_scheduler

__all__ = ["auto_schedule", "select_algorithm", "AutoScheduler"]


def select_algorithm(instance: Instance) -> str:
    """Name of the specialised algorithm with the best proven ratio.

    Delegates to the engine's default (``best_ratio``) selection policy,
    which ranks the registered algorithms by their declared capabilities;
    ``"single_machine"`` denotes the structural everything-fits-on-one-machine
    shortcut.
    """
    from ..engine.policy import get_policy

    return get_policy("best_ratio").choose(instance)


def auto_schedule(instance: Instance, portfolio: bool = True) -> Schedule:
    """Schedule ``instance`` with the best applicable algorithm per component.

    Parameters
    ----------
    instance:
        Any instance.
    portfolio:
        When True (default) all applicable portfolio algorithms are run per
        component and the cheapest feasible schedule is kept; when False only
        the policy's preferred algorithm runs (plus FirstFit, the guarantee
        of last resort).

    The per-component decisions are recorded in the returned schedule's
    ``meta["components"]``; :meth:`busytime.engine.Engine.solve` returns the
    same schedule inside a full :class:`~busytime.engine.SolveReport`.
    """
    from ..engine import Engine, SolveRequest

    report = Engine().solve(SolveRequest(instance=instance, portfolio=portfolio))
    return report.schedule


class AutoScheduler(FunctionScheduler):
    """Dispatching scheduler: best applicable algorithm per connected component."""

    def __init__(self) -> None:
        super().__init__(
            auto_schedule,
            name="auto",
            approximation_ratio=4.0,
            instance_class="general",
            paper_section="Sections 2, 3, Appendix",
            composite=True,
            portfolio_member=False,
            # The dispatcher inherits the whole registry's coverage: the
            # engine routes each component to a declarer of the objective
            # and (for demand instances) a demand-aware algorithm.
            supported_objectives=(
                "busy_time",
                "weighted_busy_time",
                "machines_plus_busy",
                "tariff_busy_time",
            ),
            demand_aware=True,
        )


register_scheduler(AutoScheduler())
