"""Algorithm Bounded_Length for bounded-length instances (Section 3.2).

The paper considers instances whose job lengths all lie in ``[1, d]`` for a
fixed constant ``d`` (with integral start times) and gives a polynomial
``(2 + eps)``-approximation:

1. **Segmentation (Step 1).** Jobs are partitioned into *segments*: job ``j``
   belongs to segment ``r`` when ``s_j in [d*(r-1), d*r)``.  **Lemma 3.3**
   shows that forbidding machines from mixing jobs of different segments
   costs at most a factor 2: a machine of OPT covering ``k`` adjacent
   segments is replaced by ``k`` per-segment machines whose busy intervals
   pairwise overlap only between neighbours, so the even-indexed and the
   odd-indexed replacements each cost at most the original machine.

2. **Per-segment solution (Step 2).** Within one segment the paper *guesses*
   (enumerates) the machine count, the vector of machine busy intervals
   (geometrically rounded by ``1 + eps``) and the multiset of independent
   sets, then assigns independent sets to machines by a maximum bipartite
   b-matching; a correct guess yields a ``(1 + eps)``-approximation for the
   segment.

The enumeration of Step 2, while polynomial for constant ``d``, has constants
of order ``d * (2e)^d`` and is not executable in practice.  As documented in
``DESIGN.md`` (§5.2) this implementation keeps Step 1 verbatim and replaces
the per-segment guess by an anytime portfolio that preserves the structure of
Step 2:

* exact branch and bound when the segment has at most ``segment_exact_limit``
  jobs (this *is* a correct guess: it returns the segment optimum, i.e. a
  ``(1+0)``-approximation);
* otherwise an independent-set packing in the spirit of Step 2(c)–(e): the
  segment's jobs are decomposed into independent sets ("threads", one per
  colour of the interval graph), candidate machines with busy-interval
  guesses are formed by grouping ``g`` threads, and the assignment of
  independent sets to machines is recomputed by a maximum bipartite
  b-matching (machine capacity ``g``, independent-set capacity 1);
* a FirstFit run on the segment is always computed as a safety net and the
  cheapest of the available per-segment schedules is kept.

Because every segment is solved at least as well as FirstFit would, the
overall cost is at most ``2 * (1 + eps_seg) * OPT`` on segments solved
exactly and at most ``2 * 4 * OPT`` in the worst case of the fallback —
experiment E6 measures where real instances fall (they sit well under 2).

Both per-segment sub-solvers (FirstFit and the branch and bound) answer
their feasibility queries from incrementally maintained sweep-line machine
profiles (:class:`~busytime.core.events.SweepProfile`), and the candidate
costs compared below are read off the same maintained state; the final
assembled schedule is still validated by the independent slow-path oracle
``verify_schedule``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.intervals import Interval, Job, span
from ..core.schedule import Machine, Schedule
from ..graphs.bmatching import max_bipartite_b_matching
from ..graphs.interval_graph import partition_into_independent_sets
from .base import FunctionScheduler, register_scheduler
from .first_fit import first_fit

__all__ = [
    "bounded_length",
    "segment_jobs",
    "BoundedLengthScheduler",
    "SegmentSolution",
]


@dataclass(frozen=True)
class SegmentSolution:
    """Bookkeeping for one segment: which solver won and at what cost."""

    segment_index: int
    num_jobs: int
    solver: str
    cost: float


def segment_jobs(instance: Instance, d: float) -> Dict[int, List[Job]]:
    """Step 1: assign each job to segment ``r`` with ``s_j - t_0 in [d*(r-1), d*r)``.

    Segments are indexed from 1 as in the paper.  The grid is anchored at
    ``t_0``, the earliest start in the instance: the Lemma 3.3 argument
    holds for *any* grid origin, and anchoring at the instance's own left
    edge makes the segmentation — and therefore the produced schedule —
    invariant under global time translation (the service layer's
    canonicalization relies on every algorithm being translation
    equivariant).  ``d`` must be positive and at least the maximum job
    length for the Lemma 3.3 argument to apply; the function itself only
    requires ``d > 0``.
    """
    if d <= 0:
        raise ValueError(f"segment width d must be positive, got {d}")
    origin = min((j.start for j in instance.jobs), default=0.0)
    segments: Dict[int, List[Job]] = {}
    for job in instance.jobs:
        r = int(math.floor((job.start - origin) / d)) + 1
        segments.setdefault(r, []).append(job)
    return segments


def _is_packing_schedule(
    segment_instance: Instance,
) -> Optional[List[List[Job]]]:
    """Step 2(c)–(e) analogue: thread decomposition + b-matching assignment.

    Returns the machine blocks, or ``None`` when the b-matching cannot match
    every independent set (callers then fall back to FirstFit).
    """
    jobs = list(segment_instance.jobs)
    if not jobs:
        return []
    g = segment_instance.g
    threads = partition_into_independent_sets(jobs)
    threads = [t for t in threads if t]
    # Order threads by the left endpoint of their hull, then group g per
    # candidate machine; the machine's guessed busy interval is the hull of
    # its group (this plays the role of the paper's guessed (s(M_i), busy_i)).
    threads.sort(key=lambda t: (min(j.start for j in t), -span(t)))
    machine_hulls: List[Interval] = []
    initial_groups: List[List[int]] = []
    for i in range(0, len(threads), g):
        group = list(range(i, min(i + g, len(threads))))
        initial_groups.append(group)
        lo = min(min(j.start for j in threads[k]) for k in group)
        hi = max(max(j.end for j in threads[k]) for k in group)
        machine_hulls.append(Interval(lo, hi))

    # Bipartite graph: machine m -- thread h admissible when the thread's
    # hull fits inside the machine's guessed busy interval.
    left_caps = {m: g for m in range(len(machine_hulls))}
    right_caps = {h: 1 for h in range(len(threads))}
    edges: List[Tuple[int, int]] = []
    for m, hull in enumerate(machine_hulls):
        for h, thread in enumerate(threads):
            lo = min(j.start for j in thread)
            hi = max(j.end for j in thread)
            if hull.start <= lo and hi <= hull.end:
                edges.append((m, h))
    result = max_bipartite_b_matching(left_caps, right_caps, edges)
    if result.size < len(threads):
        return None
    blocks: List[List[Job]] = [[] for _ in machine_hulls]
    for m, h in result.edges:
        blocks[m].extend(threads[h])
    return [b for b in blocks if b]


def bounded_length(
    instance: Instance,
    d: Optional[float] = None,
    eps: float = 0.1,
    segment_exact_limit: int = 12,
) -> Schedule:
    """Schedule ``instance`` with the Section 3.2 Bounded_Length algorithm.

    Parameters
    ----------
    instance:
        Any instance; the ``(2 + eps)`` guarantee is meaningful when job
        lengths lie in ``[1, d]``.
    d:
        The segment width (the paper's length bound).  Defaults to the
        maximum job length, which always satisfies the Lemma 3.3 requirement.
    eps:
        Accuracy parameter; only affects how hard the per-segment solver
        tries (segments within ``segment_exact_limit`` jobs are solved
        exactly regardless).
    segment_exact_limit:
        Segments with at most this many jobs are solved by exact branch and
        bound (warm-started by FirstFit).

    Returns
    -------
    Schedule
        ``meta['segments']`` holds one :class:`SegmentSolution` per segment,
        ``meta['d']`` the segment width used.
    """
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="bounded_length")
    if d is None:
        d = max(instance.max_length, 1e-12)

    from ..exact import branch_and_bound_optimum  # deferred: exact imports core only

    segments = segment_jobs(instance, d)
    machines: List[Machine] = []
    seg_solutions: List[SegmentSolution] = []

    for r in sorted(segments):
        seg_jobs = segments[r]
        seg_instance = Instance(
            jobs=tuple(seg_jobs), g=instance.g, name=f"{instance.name}#seg{r}"
        )
        candidates: List[Tuple[str, Schedule]] = []

        ff = first_fit(seg_instance)
        candidates.append(("first_fit", ff))

        if len(seg_jobs) <= segment_exact_limit:
            exact = branch_and_bound_optimum(
                seg_instance, initial_upper_bound=ff.total_busy_time
            )
            candidates.append(("exact", exact))
        else:
            blocks = _is_packing_schedule(seg_instance)
            if blocks is not None:
                packing_machines = tuple(
                    Machine(index=i, jobs=tuple(b)) for i, b in enumerate(blocks)
                )
                packing = Schedule(
                    instance=seg_instance,
                    machines=packing_machines,
                    algorithm="is_packing",
                )
                packing.validate()
                candidates.append(("is_packing", packing))

        solver, best = min(candidates, key=lambda c: c[1].total_busy_time)
        seg_solutions.append(
            SegmentSolution(
                segment_index=r,
                num_jobs=len(seg_jobs),
                solver=solver,
                cost=best.total_busy_time,
            )
        )
        for m in best.machines:
            machines.append(Machine(index=len(machines), jobs=m.jobs))

    schedule = Schedule(
        instance=instance,
        machines=tuple(machines),
        algorithm="bounded_length",
        meta={"segments": seg_solutions, "d": d, "eps": eps},
    )
    schedule.validate()
    return schedule


class BoundedLengthScheduler(FunctionScheduler):
    """Segmented solver; (2+eps)-approximation on bounded-length instances."""

    def __init__(self) -> None:
        super().__init__(
            bounded_length,
            name="bounded_length",
            # 2 + eps with the default eps=0.1; declared honestly so the
            # engine's proven-ratio certificate never overstates the paper.
            approximation_ratio=2.1,
            instance_class="bounded_length",
            paper_section="Section 3.2",
            instance_classes=("bounded_length",),
            max_length_ratio=8.0,
            selection_priority=30,
            supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        )


register_scheduler(BoundedLengthScheduler())
