"""Algorithm FirstFit — the paper's main result (Section 2).

FirstFit sorts the jobs in non-increasing order of length and assigns each
job, in that order, to the lowest-indexed machine that can still process it
without ever exceeding ``g`` simultaneous jobs; a new machine is opened when
no existing machine fits.

Guarantees proved in the paper:

* **Theorem 2.1** — ``FirstFit(J) <= 4 * OPT(J)`` for every instance;
* **Theorem 2.4** — there are instances on which FirstFit pays more than
  ``(3 - eps) * OPT`` (see :mod:`busytime.generators.adversarial` for the
  Fig. 4 construction), so
* **Theorem 2.5** — the approximation ratio of FirstFit is between 3 and 4.

The implementation answers the "does job J fit on machine M_i" query from
each machine's incrementally maintained sweep-line load profile
(:class:`~busytime.core.events.SweepProfile`): a fit test costs
``O(log k + w)`` — ``k`` breakpoints on the machine, ``w`` of them inside
J's window — and an assignment updates the profile in ``O(k)`` worst case,
for ``O(n * (m * (log k + w) + k))`` overall with ``m`` the number of
opened machines.  This replaces the seed's clip-and-rescan check (re-deriving the
peak overlap from the machine's whole job list per query, ``O(n * m * g
log g)`` overall), which capped benchmarkable instance sizes; see
``benchmarks/test_bench_firstfit_scaling.py`` for the measured trajectory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Machine, Schedule, ScheduleBuilder
from .base import FunctionScheduler, register_scheduler

__all__ = [
    "first_fit",
    "first_fit_order",
    "FirstFitScheduler",
    "BULK_FIRST_FIT_MIN",
]

#: Instance sizes from which ``first_fit`` routes to the vectorized
#: saturation-bitmask kernel (unit demands only, flag not ``off``).  Below
#: this the per-job builder path is already fast and, unlike the kernel
#: path, validates the result in-call.
BULK_FIRST_FIT_MIN = 50_000


def first_fit_order(jobs: Sequence[Job]) -> List[Job]:
    """The processing order used by FirstFit: non-increasing length.

    Ties are broken by start time and then id so that runs are deterministic
    and reproducible across platforms (the paper leaves tie-breaking open).
    """
    return sorted(jobs, key=lambda j: (-j.length, j.start, j.id))


def _bulk_first_fit(instance: Instance) -> Optional[Schedule]:
    """FirstFit via the numpy saturation-bitmask kernel, or None to fall back.

    Produces schedules **bit-identical** to the builder path (same
    processing order, same machine indices, same per-machine job order) —
    pinned by the differential corpus.  The kernel bails out past
    :data:`~busytime.core.bulk.MAX_BITMASK_MACHINES` machines, in which
    case the caller falls back to the builder.  The returned schedule is
    *not* validated in-call (that is what makes the n = 10^6 wall-clock
    budget attainable); large-scale callers validate out-of-band with
    ``verify_schedule(schedule, mode="batch")``, and ``meta["kernel"]``
    records which path produced the result.
    """
    import numpy as np

    from ..core.bulk import first_fit_assign

    jobs = instance.jobs
    n = len(jobs)
    starts = np.fromiter((j.start for j in jobs), np.float64, count=n)
    ends = np.fromiter((j.end for j in jobs), np.float64, count=n)
    ids = np.fromiter((j.id for j in jobs), np.int64, count=n)
    result = first_fit_assign(starts, ends, ids, instance.g)
    if result is None:
        return None
    order, assign, num_machines = result
    machine_jobs: List[List[Job]] = [[] for _ in range(num_machines)]
    for pos in order:
        machine_jobs[assign[pos]].append(jobs[pos])
    machines = tuple(
        Machine(index=i, jobs=tuple(mjobs))
        for i, mjobs in enumerate(machine_jobs)
    )
    return Schedule(
        instance=instance,
        machines=machines,
        algorithm="first_fit",
        meta={
            "processing_order": ids[np.asarray(order)].tolist(),
            "kernel": "bulk",
        },
    )


def first_fit(instance: Instance) -> Schedule:
    """Schedule ``instance`` with the Section 2 FirstFit algorithm.

    Returns a :class:`~busytime.core.schedule.Schedule` whose ``meta``
    records the processing order (job ids) for use by the certificate
    checks of experiment E10.  Unit-demand instances with at least
    :data:`BULK_FIRST_FIT_MIN` jobs route to the vectorized kernel (see
    :func:`_bulk_first_fit` for the validation contract); everything else
    takes the per-job builder path and is validated before being returned.
    """
    if len(instance.jobs) >= BULK_FIRST_FIT_MIN and not instance.has_demands:
        from ..core.events import _bulk_enabled

        if _bulk_enabled():
            schedule = _bulk_first_fit(instance)
            if schedule is not None:
                return schedule
    builder = ScheduleBuilder(instance, algorithm="first_fit")
    order = first_fit_order(instance.jobs)
    for job in order:
        builder.assign_first_fit(job)
    builder.meta["processing_order"] = [j.id for j in order]
    return builder.freeze()


class FirstFitScheduler(FunctionScheduler):
    """Longest-first FirstFit; 4-approximation for general instances.

    Demand-aware: every ``fits`` query routes through the builder's
    maintained profile, which honours job capacity demands (the [15]
    model) — with unit demands the checks and the produced schedules are
    bit-for-bit the paper's.  FirstFit is also the engine's fallback for
    every registered objective: it minimises busy time and opens machines
    lazily, so it remains a sensible (if guarantee-free beyond busy time)
    last resort under activation-priced models.
    """

    def __init__(self) -> None:
        super().__init__(
            first_fit,
            name="first_fit",
            approximation_ratio=4.0,
            instance_class="general",
            paper_section="Section 2",
            instance_classes=("general",),
            selection_priority=40,
            supported_objectives=(
                "busy_time",
                "weighted_busy_time",
                "machines_plus_busy",
                "tariff_busy_time",
            ),
            demand_aware=True,
        )


register_scheduler(FirstFitScheduler())
