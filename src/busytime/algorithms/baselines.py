"""Baseline schedulers the paper compares against implicitly.

None of these carries the paper's approximation guarantees; they exist so the
benchmark harness can show *why* the paper's algorithms matter:

* :func:`machine_minimizing` — the Section 1.1 remark: minimising the number
  of machines is polynomial (colour the interval graph, bundle ``g`` colour
  classes per machine).  Experiment E9 shows its busy time can be far from
  optimal even though its machine count is minimum.
* :func:`next_fit_by_start` — NextFit in start order applied to a *general*
  instance (the Section 3.1 greedy without the properness prerequisite).
* :func:`best_fit` — like FirstFit but placing each job on the feasible
  machine whose busy time grows the least (a natural heuristic; no proven
  bound).
* :func:`singleton` — one machine per job; cost ``len(J)``, i.e. exactly
  ``g`` times the parallelism bound.
* :func:`random_assignment` — jobs assigned to a random feasible machine
  among the open ones (seeded; used as a sanity floor in comparisons).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule, ScheduleBuilder
from ..exact.special_cases import minimize_machine_count
from .base import FunctionScheduler, register_scheduler

__all__ = [
    "machine_minimizing",
    "next_fit_by_start",
    "best_fit",
    "singleton",
    "random_assignment",
]


def machine_minimizing(instance: Instance) -> Schedule:
    """Minimum-machine-count baseline (interval colouring, Section 1.1)."""
    return minimize_machine_count(instance)


def next_fit_by_start(instance: Instance) -> Schedule:
    """NextFit in start-time order on arbitrary instances (no guarantee)."""
    builder = ScheduleBuilder(instance, algorithm="next_fit_by_start")
    current: Optional[int] = None
    for job in sorted(instance.jobs, key=lambda j: (j.start, j.end, j.id)):
        if current is None or not builder.fits(current, job):
            current = builder.open_machine()
        builder.assign(current, job)
    return builder.freeze()


def best_fit(instance: Instance) -> Schedule:
    """Longest-first BestFit: place each job where the busy time grows least."""
    builder = ScheduleBuilder(instance, algorithm="best_fit")
    order = sorted(instance.jobs, key=lambda j: (-j.length, j.start, j.id))
    for job in order:
        best_idx: Optional[int] = None
        best_increase = float("inf")
        for idx in range(builder.num_machines):
            if not builder.fits(idx, job):
                continue
            increase = builder.marginal_busy_increase(idx, job)
            if increase < best_increase:
                best_increase = increase
                best_idx = idx
        if best_idx is None or best_increase >= job.length:
            # Opening a new machine costs exactly len(job); prefer it when no
            # existing machine absorbs the job more cheaply.
            best_idx = builder.open_machine()
        builder.assign(best_idx, job)
    return builder.freeze()


def singleton(instance: Instance) -> Schedule:
    """One machine per job (cost = len(J); the no-sharing strawman)."""
    builder = ScheduleBuilder(instance, algorithm="singleton")
    for job in instance.jobs:
        builder.assign_new_machine([job])
    return builder.freeze()


def random_assignment(instance: Instance, seed: int = 0) -> Schedule:
    """Each job goes to a uniformly random feasible open machine (or a new one)."""
    rng = random.Random(seed)
    builder = ScheduleBuilder(instance, algorithm="random_assignment")
    jobs: List[Job] = list(instance.jobs)
    rng.shuffle(jobs)
    for job in jobs:
        feasible = [
            idx for idx in range(builder.num_machines) if builder.fits(idx, job)
        ]
        # A fresh machine is always an option, weighted as one extra slot.
        choice = rng.randrange(len(feasible) + 1)
        if choice == len(feasible):
            idx = builder.open_machine()
        else:
            idx = feasible[choice]
        builder.assign(idx, job)
    builder.meta["seed"] = seed
    return builder.freeze()


# The builder-routed greedies (NextFit / BestFit / singleton / random) are
# demand-aware for free: every `fits` query goes through the machine's
# maintained profile, which honours job capacity demands.  machine_min is
# *not*: interval colouring bundles g colour classes per machine by
# cardinality, which can overload a capacity-g machine under demands — but
# it stays the natural baseline for the machines_plus_busy cost model.
register_scheduler(
    FunctionScheduler(
        machine_minimizing,
        name="machine_min",
        approximation_ratio=None,
        instance_class="general",
        paper_section="Section 1.1 (remark)",
        supported_objectives=("busy_time", "machines_plus_busy"),
    )
)
register_scheduler(
    FunctionScheduler(
        next_fit_by_start,
        name="next_fit_by_start",
        approximation_ratio=None,
        instance_class="general",
        paper_section="baseline",
        supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        demand_aware=True,
    )
)
register_scheduler(
    FunctionScheduler(
        best_fit,
        name="best_fit",
        approximation_ratio=None,
        instance_class="general",
        paper_section="baseline",
        supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        demand_aware=True,
    )
)
register_scheduler(
    FunctionScheduler(
        singleton,
        name="singleton",
        approximation_ratio=None,
        instance_class="general",
        paper_section="baseline",
        supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        demand_aware=True,
    )
)
register_scheduler(
    FunctionScheduler(
        random_assignment,
        name="random_assignment",
        approximation_ratio=None,
        instance_class="general",
        paper_section="baseline",
        supported_objectives=("busy_time", "weighted_busy_time", "tariff_busy_time"),
        demand_aware=True,
    )
)
