"""Common scheduler interface and capability registry.

Every algorithm in this package is exposed both as a plain function
(``first_fit(instance) -> Schedule``) and as a :class:`Scheduler` object with
a uniform ``schedule(instance)`` method, a declared ``name`` and *capability
metadata*: the proven approximation guarantee, the instance classes the
guarantee applies to, preconditions (such as a maximum length ratio),
determinism and whether the algorithm is a composite dispatcher.  The engine's
selection policy (:mod:`busytime.engine.policy`) queries this metadata —
via :meth:`Scheduler.handles` and :func:`all_schedulers` — instead of
hard-coding a per-algorithm dispatch chain, so a newly registered algorithm
becomes selectable by declaring its capabilities alone.

The registry lets the engine, the experiment harness and the CLI enumerate
available algorithms by name without importing each module explicitly.
:func:`register_scheduler` doubles as a decorator for plain functions::

    @register_scheduler(name="my_greedy", approximation_ratio=3.0)
    def my_greedy(instance):
        ...
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.instance import Instance
from ..core.schedule import Schedule

__all__ = [
    "Scheduler",
    "FunctionScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "all_schedulers",
    "algorithm_table",
    "AlgorithmInfo",
    "KNOWN_INSTANCE_CLASSES",
]

#: The structural classes :meth:`Scheduler.handles` understands.  Declaring
#: anything else is a registration-time error — a typo'd class name used to
#: make the algorithm silently unselectable instead.
KNOWN_INSTANCE_CLASSES = ("general", "clique", "proper", "laminar", "bounded_length")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Capability metadata for one algorithm.

    Beyond the descriptive fields used in reports and documentation, the
    engine's selection policy reads:

    ``instance_classes``
        Structural classes the algorithm (and its guarantee) applies to:
        ``"general"`` (always applicable), ``"clique"``, ``"proper"``,
        ``"laminar"`` or ``"bounded_length"`` (applicable when the length
        ratio is finite and at most ``max_length_ratio``).
    ``max_length_ratio``
        Precondition on ``instance.length_ratio()``; ``None`` means no bound.
    ``deterministic``
        Same instance always yields the same schedule (required for the
        engine's reproducibility guarantees; non-deterministic algorithms are
        never auto-selected).
    ``anytime``
        Produces a feasible schedule early and improves it (e.g. local
        search); relevant under time budgets.
    ``selection_priority``
        Tie-break when two applicable algorithms have the same proven ratio;
        lower wins.
    ``portfolio_member``
        Whether the algorithm joins the engine's per-component portfolio
        when applicable (expensive post-optimisers opt out).
    ``composite``
        True for meta-algorithms (the ``auto`` dispatcher) that orchestrate
        other registered algorithms; never selected by a policy.
    ``supported_objectives``
        Objective names (see :mod:`busytime.core.objectives`) the algorithm
        declares itself meaningful for.  Every algorithm minimises busy
        time; those whose construction is invariant under the richer cost
        models additionally declare them, and the selection policies route
        a non-default-objective request only to declarers.
    ``demand_aware``
        True when the algorithm's feasibility checks honour job capacity
        demands (the [15] model).  Instances carrying non-unit demands are
        routed only to demand-aware algorithms.
    ``window_aware``
        True when the algorithm understands the flex extension — it
        *places* jobs inside release/deadline windows and honours the
        site-wide capacity cap and background load.  Flex instances
        (``Instance.is_flex``) are routed only to window-aware algorithms:
        a fixed-interval guarantee says nothing against an optimum that
        may slide jobs, so certificates never transfer across this flag.
    ``tariff_aware``
        True when the algorithm optimises placement against a time-varying
        :class:`~busytime.pricing.series.TariffSeries` (received via
        :meth:`Scheduler.schedule_under`); tariff-blind algorithms are
        still *priced* correctly by the cost model, they just never look
        at the tariff while placing.
    """

    name: str
    paper_section: str
    approximation_ratio: Optional[float]
    instance_class: str
    description: str
    instance_classes: Tuple[str, ...] = ("general",)
    max_length_ratio: Optional[float] = None
    deterministic: bool = True
    anytime: bool = False
    selection_priority: int = 100
    portfolio_member: bool = True
    composite: bool = False
    supported_objectives: Tuple[str, ...] = ("busy_time",)
    demand_aware: bool = False
    window_aware: bool = False
    tariff_aware: bool = False


class Scheduler(abc.ABC):
    """Abstract base class for busy-time schedulers."""

    #: short, unique identifier (registry key)
    name: str = "abstract"
    #: proven approximation guarantee on the declared instance class, or None
    approximation_ratio: Optional[float] = None
    #: primary instance class on which the guarantee holds (kept for reports)
    instance_class: str = "general"
    #: paper section implementing the algorithm
    paper_section: str = ""
    #: all structural classes the algorithm applies to (see AlgorithmInfo)
    instance_classes: Tuple[str, ...] = ("general",)
    #: precondition on instance.length_ratio(), or None
    max_length_ratio: Optional[float] = None
    #: same instance always yields the same schedule
    deterministic: bool = True
    #: produces feasible schedules early and keeps improving them
    anytime: bool = False
    #: tie-break among equal proven ratios; lower wins
    selection_priority: int = 100
    #: joins the engine's per-component portfolio when applicable
    portfolio_member: bool = True
    #: meta-algorithm orchestrating other registered algorithms
    composite: bool = False
    #: objective names this algorithm declares itself meaningful for
    supported_objectives: Tuple[str, ...] = ("busy_time",)
    #: feasibility checks honour job capacity demands (the [15] model)
    demand_aware: bool = False
    #: places jobs inside flex windows and honours site-wide capacity
    window_aware: bool = False
    #: optimises placement against a time-varying tariff (schedule_under)
    tariff_aware: bool = False

    @abc.abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Produce a feasible schedule for the instance."""

    def schedule_under(self, instance: Instance, model=None) -> Schedule:
        """Produce a schedule, given the request's resolved cost model.

        The default ignores the model — every pre-tariff algorithm builds
        the same schedule whatever the pricing — so only ``tariff_aware``
        schedulers override this to read ``model.tariff`` while placing.
        The engine always calls this entry point.
        """
        return self.schedule(instance)

    def __call__(self, instance: Instance) -> Schedule:
        return self.schedule(instance)

    def supports_objective(self, objective: str) -> bool:
        """True when the algorithm declares support for the objective name."""
        return objective in self.supported_objectives

    def handles(self, instance: Instance, objective: str = "busy_time") -> bool:
        """True when this algorithm's declared capabilities cover ``instance``
        under ``objective``.

        The check is purely structural (problem-model support, class
        membership, the length-ratio precondition); it does not run the
        algorithm.  Demand-carrying instances are covered only by
        ``demand_aware`` algorithms, and a non-default objective only by its
        declarers — the routing rule every selection policy applies.
        """
        if not self.supports_objective(objective):
            return False
        if instance.has_demands and not self.demand_aware:
            return False
        if instance.is_flex and not self.window_aware:
            return False
        if self.max_length_ratio is not None:
            ratio = instance.length_ratio()
            if ratio == float("inf") or ratio > self.max_length_ratio:
                return False
        for cls in self.instance_classes:
            if cls == "general":
                return True
            if cls == "bounded_length":
                # Gated by max_length_ratio (checked above).  A declaration
                # without the threshold would make the algorithm universally
                # applicable by accident, so it never matches instead.
                if self.max_length_ratio is not None:
                    return True
            if cls == "clique" and instance.is_clique():
                return True
            if cls == "proper" and instance.is_proper():
                return True
            if cls == "laminar" and instance.is_laminar():
                return True
        return False

    def info(self) -> AlgorithmInfo:
        return AlgorithmInfo(
            name=self.name,
            paper_section=self.paper_section,
            approximation_ratio=self.approximation_ratio,
            instance_class=self.instance_class,
            description=(self.__doc__ or "").strip().split("\n")[0],
            instance_classes=self.instance_classes,
            max_length_ratio=self.max_length_ratio,
            deterministic=self.deterministic,
            anytime=self.anytime,
            selection_priority=self.selection_priority,
            portfolio_member=self.portfolio_member,
            composite=self.composite,
            supported_objectives=self.supported_objectives,
            demand_aware=self.demand_aware,
            window_aware=self.window_aware,
            tariff_aware=self.tariff_aware,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Scheduler {self.name}>"


class FunctionScheduler(Scheduler):
    """Adapter turning a plain ``instance -> Schedule`` function into a Scheduler.

    When ``instance_classes`` is omitted the default is *explicitly*
    ``(instance_class,)`` — the single class the guarantee is declared on,
    nothing more.  In particular, setting only ``instance_class="proper"``
    does **not** keep the algorithm applicable to general instances; pass
    ``instance_classes=("proper", "general")`` (or similar) to widen
    applicability beyond the guarantee class.  Registration validates every
    declared class name against :data:`KNOWN_INSTANCE_CLASSES`, so the
    historical footgun — a typo'd or unintended class silently making the
    algorithm unselectable — fails loudly instead.
    """

    def __init__(
        self,
        func: Callable[[Instance], Schedule],
        name: str,
        approximation_ratio: Optional[float] = None,
        instance_class: str = "general",
        paper_section: str = "",
        instance_classes: Optional[Tuple[str, ...]] = None,
        max_length_ratio: Optional[float] = None,
        deterministic: bool = True,
        anytime: bool = False,
        selection_priority: int = 100,
        portfolio_member: bool = True,
        composite: bool = False,
        supported_objectives: Tuple[str, ...] = ("busy_time",),
        demand_aware: bool = False,
        window_aware: bool = False,
        tariff_aware: bool = False,
    ) -> None:
        self._func = func
        self.name = name
        self.approximation_ratio = approximation_ratio
        self.instance_class = instance_class
        self.paper_section = paper_section
        self.instance_classes = (
            instance_classes if instance_classes is not None else (instance_class,)
        )
        self.max_length_ratio = max_length_ratio
        self.deterministic = deterministic
        self.anytime = anytime
        self.selection_priority = selection_priority
        self.portfolio_member = portfolio_member
        self.composite = composite
        self.supported_objectives = tuple(supported_objectives)
        self.demand_aware = demand_aware
        self.window_aware = window_aware
        self.tariff_aware = tariff_aware
        self.__doc__ = func.__doc__

    def schedule(self, instance: Instance) -> Schedule:
        return self._func(instance)


def _validate_capabilities(scheduler: Scheduler) -> None:
    """Reject inconsistent capability declarations at registration time.

    Catches the metadata footguns that used to surface only as an algorithm
    never being selected: unknown structural class names (typos), an empty
    declaration, a ``bounded_length`` declaration without the
    ``max_length_ratio`` threshold that gates it, and an empty or
    ill-typed ``supported_objectives`` tuple.
    """
    classes = tuple(scheduler.instance_classes)
    if not classes:
        raise ValueError(
            f"scheduler {scheduler.name!r} declares no instance classes; "
            f"declare at least one of {KNOWN_INSTANCE_CLASSES}"
        )
    unknown = [c for c in classes if c not in KNOWN_INSTANCE_CLASSES]
    if unknown:
        raise ValueError(
            f"scheduler {scheduler.name!r} declares unknown instance "
            f"class(es) {unknown}; known: {KNOWN_INSTANCE_CLASSES}"
        )
    if scheduler.instance_class not in KNOWN_INSTANCE_CLASSES:
        raise ValueError(
            f"scheduler {scheduler.name!r}: instance_class "
            f"{scheduler.instance_class!r} is not one of {KNOWN_INSTANCE_CLASSES}"
        )
    if "bounded_length" in classes and scheduler.max_length_ratio is None:
        raise ValueError(
            f"scheduler {scheduler.name!r} declares 'bounded_length' without "
            f"max_length_ratio; the declaration would never match (see "
            f"Scheduler.handles)"
        )
    objectives = tuple(scheduler.supported_objectives)
    if not objectives or not all(
        isinstance(o, str) and o for o in objectives
    ):
        raise ValueError(
            f"scheduler {scheduler.name!r}: supported_objectives must be a "
            f"non-empty tuple of objective names, got {objectives!r}"
        )


_REGISTRY: Dict[str, Scheduler] = {}


def register_scheduler(
    scheduler: Optional[Scheduler] = None, overwrite: bool = False, **metadata
) -> Union[Scheduler, Callable[[Callable[[Instance], Schedule]], Callable]]:
    """Add a scheduler to the global registry (keyed by its ``name``).

    Two forms are supported.  Called with a :class:`Scheduler` instance it
    registers and returns it (the historical form).  Called with keyword
    metadata only it acts as a decorator for a plain scheduling function,
    wrapping it in a :class:`FunctionScheduler`::

        @register_scheduler(name="my_greedy", approximation_ratio=3.0)
        def my_greedy(instance):
            ...

    The decorated function is returned unchanged (so it stays usable as a
    plain ``instance -> Schedule`` function); the registered wrapper is
    attached as ``func.scheduler``.
    """
    if scheduler is None:
        if "name" not in metadata:
            raise TypeError("decorator form requires a name= keyword")

        def decorator(func: Callable[[Instance], Schedule]):
            wrapper = FunctionScheduler(func, **metadata)
            register_scheduler(wrapper, overwrite=overwrite)
            func.scheduler = wrapper  # type: ignore[attr-defined]
            return func

        return decorator
    if metadata:
        raise TypeError("metadata keywords apply only to the decorator form")
    if scheduler.name in _REGISTRY and not overwrite:
        raise KeyError(f"scheduler {scheduler.name!r} already registered")
    _validate_capabilities(scheduler)
    _REGISTRY[scheduler.name] = scheduler
    return scheduler


def get_scheduler(name: str) -> Scheduler:
    """Look up a registered scheduler by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_schedulers() -> List[str]:
    """Names of all registered schedulers, sorted."""
    return sorted(_REGISTRY)


def all_schedulers() -> List[Scheduler]:
    """All registered scheduler objects, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def algorithm_table() -> List[AlgorithmInfo]:
    """One :class:`AlgorithmInfo` row per registered algorithm, sorted by name.

    Used by ``busytime algorithms`` (CLI) and by documentation generators.
    """
    return [s.info() for s in all_schedulers()]
