"""Common scheduler interface and registry.

Every algorithm in this package is exposed both as a plain function
(``first_fit(instance) -> Schedule``) and as a :class:`Scheduler` object with
a uniform ``schedule(instance)`` method, a declared ``name`` and the proven
approximation guarantee (used by reports).  The registry lets the dispatcher,
the experiment harness and the CLI examples enumerate available algorithms by
name without importing each module explicitly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..core.instance import Instance
from ..core.schedule import Schedule

__all__ = [
    "Scheduler",
    "FunctionScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "AlgorithmInfo",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Static facts about an algorithm, used in reports and documentation."""

    name: str
    paper_section: str
    approximation_ratio: Optional[float]
    instance_class: str
    description: str


class Scheduler(abc.ABC):
    """Abstract base class for busy-time schedulers."""

    #: short, unique identifier (registry key)
    name: str = "abstract"
    #: proven approximation guarantee on the declared instance class, or None
    approximation_ratio: Optional[float] = None
    #: instance class on which the guarantee holds ("general", "proper", ...)
    instance_class: str = "general"
    #: paper section implementing the algorithm
    paper_section: str = ""

    @abc.abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Produce a feasible schedule for the instance."""

    def __call__(self, instance: Instance) -> Schedule:
        return self.schedule(instance)

    def info(self) -> AlgorithmInfo:
        return AlgorithmInfo(
            name=self.name,
            paper_section=self.paper_section,
            approximation_ratio=self.approximation_ratio,
            instance_class=self.instance_class,
            description=(self.__doc__ or "").strip().split("\n")[0],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Scheduler {self.name}>"


class FunctionScheduler(Scheduler):
    """Adapter turning a plain ``instance -> Schedule`` function into a Scheduler."""

    def __init__(
        self,
        func: Callable[[Instance], Schedule],
        name: str,
        approximation_ratio: Optional[float] = None,
        instance_class: str = "general",
        paper_section: str = "",
    ) -> None:
        self._func = func
        self.name = name
        self.approximation_ratio = approximation_ratio
        self.instance_class = instance_class
        self.paper_section = paper_section
        self.__doc__ = func.__doc__

    def schedule(self, instance: Instance) -> Schedule:
        return self._func(instance)


_REGISTRY: Dict[str, Scheduler] = {}


def register_scheduler(scheduler: Scheduler, overwrite: bool = False) -> Scheduler:
    """Add a scheduler to the global registry (keyed by its ``name``)."""
    if scheduler.name in _REGISTRY and not overwrite:
        raise KeyError(f"scheduler {scheduler.name!r} already registered")
    _REGISTRY[scheduler.name] = scheduler
    return scheduler


def get_scheduler(name: str) -> Scheduler:
    """Look up a registered scheduler by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_schedulers() -> List[str]:
    """Names of all registered schedulers, sorted."""
    return sorted(_REGISTRY)
