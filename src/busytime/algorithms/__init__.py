"""Scheduling algorithms: the paper's algorithms, baselines and the dispatcher."""

from .base import (
    AlgorithmInfo,
    FunctionScheduler,
    Scheduler,
    algorithm_table,
    all_schedulers,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from .baselines import (
    best_fit,
    machine_minimizing,
    next_fit_by_start,
    random_assignment,
    singleton,
)
from .bounded_length import (
    BoundedLengthScheduler,
    SegmentSolution,
    bounded_length,
    segment_jobs,
)
from .clique import CliqueScheduler, clique_deltas, clique_schedule
from .dispatch import AutoScheduler, auto_schedule, select_algorithm
from .first_fit import FirstFitScheduler, first_fit, first_fit_order
from .local_search import LocalSearchResult, improve, local_search_first_fit
from .placement import (
    PlacementFirstFitScheduler,
    TariffLocalSearchScheduler,
    candidate_starts,
    place_first_fit,
    tariff_local_search,
)
from .proper_greedy import ProperGreedyScheduler, proper_greedy

__all__ = [
    "Scheduler",
    "FunctionScheduler",
    "AlgorithmInfo",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "all_schedulers",
    "algorithm_table",
    "first_fit",
    "first_fit_order",
    "FirstFitScheduler",
    "proper_greedy",
    "ProperGreedyScheduler",
    "clique_schedule",
    "clique_deltas",
    "CliqueScheduler",
    "bounded_length",
    "segment_jobs",
    "SegmentSolution",
    "BoundedLengthScheduler",
    "auto_schedule",
    "select_algorithm",
    "AutoScheduler",
    "improve",
    "local_search_first_fit",
    "LocalSearchResult",
    "candidate_starts",
    "place_first_fit",
    "tariff_local_search",
    "PlacementFirstFitScheduler",
    "TariffLocalSearchScheduler",
    "machine_minimizing",
    "next_fit_by_start",
    "best_fit",
    "singleton",
    "random_assignment",
]
