"""Anytime portfolio racing with deterministic winners.

The racer runs the top-``race`` candidates of a selection policy's ranking
on the *whole* instance, tracks the best-so-far incumbent, and stops early
once an incumbent is provably good enough (within ``accept_factor`` of the
model-priced lower bound).  It is the speculative-execution counterpart of
the engine's sequential portfolio: same candidates, same cost comparison,
but concurrent when given an executor and interruptible by a shared
``deadline``.

**Determinism contract.**  Repeated races on the same request return
bit-identical winning schedules, whatever the executor's timing, because
the winner never depends on *when* candidates finish — only on *what* they
return:

* Acceptance is resolved in rank order: candidate ``j`` can only be
  accepted once every candidate ranked before it has been resolved
  (finished or failed), and the first acceptable candidate in rank order
  wins.  A faster-but-later-ranked acceptable candidate never steals the
  win.
* When no candidate is acceptable and all complete, the winner is the
  minimum by ``(cost, rank)`` — a pure function of the results.
* The only timing-dependent outcome is deadline truncation (the winner is
  then the best *finished* candidate).  Truncated reports are flagged
  ``budget_exhausted`` and marked ``decisive=False``, and the service
  layer never caches non-decisive results.

**Safety contract.**  A candidate that raises, or returns an infeasible
schedule, is recorded as ``failed`` and can never become the incumbent —
a poisoned candidate costs its own slot, nothing else.  The winning
schedule is re-checked by :func:`~busytime.core.schedule.verify_schedule`
(the independent slow-path oracle) before the report is assembled.
Certificates follow the engine's transfer rule: the winner's proven ratio
is the best guarantee among the candidates it provably undercuts, never a
prediction.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, Executor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Tuple

from ..algorithms.base import get_scheduler
from ..core.instance import Instance
from ..core.objectives import CostModel
from ..core.schedule import Schedule, verify_schedule
from ..engine.policy import SINGLE_MACHINE, get_policy
from ..engine.report import RaceCandidate, RaceOutcome, SolveReport
from ..engine.request import RequestValidationError, SolveRequest

__all__ = ["DEFAULT_ACCEPT_FACTOR", "race_candidates"]

#: Default early-acceptance factor: accept an incumbent only when it
#: *matches* the model-priced lower bound (i.e. is provably optimal).
#: Callers trading quality for latency raise it (1.1 accepts anything
#: within 10% of the bound).
DEFAULT_ACCEPT_FACTOR = 1.0

_EPS = 1e-9


def _race_worker(
    name: str, instance: Instance, model: Optional[CostModel] = None
) -> Tuple[Schedule, float]:
    """Run one registered candidate; picklable for process-pool executors."""
    started = time.perf_counter()
    schedule = get_scheduler(name).schedule_under(instance, model)
    return schedule, time.perf_counter() - started


class _Entry:
    """Mutable per-candidate race bookkeeping (frozen into RaceCandidate)."""

    __slots__ = ("name", "rank", "status", "started", "wall", "cost", "schedule")

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = rank
        self.status = "pending"
        self.started = False
        self.wall: Optional[float] = None
        self.cost: Optional[float] = None
        self.schedule: Optional[Schedule] = None

    def freeze(self, winner: bool) -> RaceCandidate:
        return RaceCandidate(
            algorithm=self.name,
            rank=self.rank,
            status=self.status,
            started=self.started,
            wall_time=self.wall,
            cost=self.cost,
            winner=winner,
        )


class _Race:
    """One race in flight: incumbent, timeline and the acceptance test."""

    def __init__(self, model: CostModel, instance: Instance, accept_factor: float):
        self.model = model
        self.clock_start = time.monotonic()
        self.lower_bound = model.lower_bound(instance)
        self.accept_cost = accept_factor * self.lower_bound
        self.incumbent: Optional[_Entry] = None
        self.timeline: List[Tuple[float, float]] = []

    def elapsed(self) -> float:
        return time.monotonic() - self.clock_start

    def record_finish(self, entry: _Entry, schedule: Schedule, wall: float) -> None:
        """Validate and book one finished candidate (failed if infeasible)."""
        entry.started = True
        entry.wall = wall
        try:
            schedule.validate()
        except Exception:  # noqa: BLE001 - a poisoned candidate loses its slot
            entry.status = "failed"
            return
        entry.status = "finished"
        entry.cost = self.model.schedule_cost(schedule)
        entry.schedule = schedule
        if self.incumbent is None or entry.cost < self.incumbent.cost - _EPS:
            self.incumbent = entry
            self.timeline.append((self.elapsed(), entry.cost))

    def acceptable(self, entry: _Entry) -> bool:
        return entry.status == "finished" and entry.cost <= self.accept_cost + _EPS


def race_candidates(
    request: SolveRequest,
    policy_name: str,
    model: CostModel,
    executor: Optional[Executor] = None,
    accept_factor: float = DEFAULT_ACCEPT_FACTOR,
) -> SolveReport:
    """Race the policy's top-``request.race`` candidates on the instance.

    With ``executor=None`` candidates run serially in rank order (still
    honouring the deadline and early acceptance); otherwise one task per
    candidate is submitted up front and results are *collected* in rank
    order, which is what keeps the winner independent of completion timing.
    The returned report carries the per-candidate outcome table and the
    incumbent timeline in :attr:`~busytime.engine.report.SolveReport.race`;
    the engine fills in the lower bound / objective tail exactly as for any
    other solve.
    """
    instance = request.instance
    deadline = request.deadline
    policy = get_policy(policy_name)
    ranked = policy.rank(instance, request.objective, model=model)
    if not ranked:
        raise RequestValidationError(
            f"no registered algorithm covers objective {request.objective!r} on "
            f"instance {instance.name or '(unnamed)'}"
            + (" (instance carries capacity demands)" if instance.has_demands else "")
        )
    if ranked[0] == SINGLE_MACHINE:
        return _single_machine_report(request, policy_name, model, accept_factor)

    entries = [_Entry(name, rank) for rank, name in enumerate(ranked[: request.race])]
    race = _Race(model, instance, accept_factor)
    accepted: Optional[_Entry] = None
    truncated = False

    if executor is None:
        accepted, truncated = _run_serial(entries, instance, race, deadline)
    else:
        accepted, truncated = _run_concurrent(entries, instance, race, deadline, executor)

    winner = accepted
    fallback = False
    if winner is None:
        finished = [e for e in entries if e.status == "finished"]
        if finished:
            winner = min(finished, key=lambda e: (e.cost, e.rank))
    if winner is None:
        # Nothing finished before the deadline: solve synchronously with the
        # guarantee of last resort so the race still answers (the report
        # stays flagged budget_exhausted).
        fallback = True
        name = (
            "first_fit"
            if get_scheduler("first_fit").handles(instance, request.objective)
            else entries[0].name
        )
        entry = _Entry(name, len(entries))
        started = time.perf_counter()
        schedule = get_scheduler(name).schedule_under(instance, model)
        race.record_finish(entry, schedule, time.perf_counter() - started)
        if entry.status != "finished":
            raise RuntimeError(
                f"race fallback algorithm {name!r} produced an infeasible schedule"
            )
        entries.append(entry)
        winner = entry

    # The independent slow-path oracle signs off on every race winner.
    verify_schedule(winner.schedule)

    proven: Optional[float] = None
    if model.preserves_busy_time_ratios and not instance.has_demands:
        ratios = []
        for entry in entries:
            if entry.status != "finished":
                continue
            # A candidate's guarantee transfers to the winner only when the
            # winner costs no more than that candidate did.
            if entry is not winner and entry.cost < winner.cost - _EPS:
                continue
            ratio = get_scheduler(entry.name).approximation_ratio
            if ratio is not None and get_scheduler(entry.name).handles(
                instance, request.objective
            ):
                ratios.append(ratio)
        proven = min(ratios, default=None)

    outcome = RaceOutcome(
        candidates=tuple(e.freeze(winner=e is winner) for e in entries),
        deadline=deadline,
        accept_factor=accept_factor,
        decisive=not truncated,
        fallback=fallback,
        incumbent_timeline=tuple(race.timeline),
    )
    return SolveReport(
        schedule=winner.schedule,
        algorithm=winner.name,
        policy=policy_name,
        portfolio=request.portfolio,
        lower_bound=0.0,
        proven_ratio=proven,
        budget_exhausted=truncated,
        race=outcome,
    )


def _run_serial(
    entries: List[_Entry],
    instance: Instance,
    race: _Race,
    deadline: Optional[float],
) -> Tuple[Optional[_Entry], bool]:
    """Rank-order serial execution (the deterministic reference path)."""
    for index, entry in enumerate(entries):
        if deadline is not None and race.elapsed() >= deadline:
            for later in entries[index:]:
                later.status = "cancelled"
            return None, True
        entry.started = True
        started = time.perf_counter()
        try:
            schedule = get_scheduler(entry.name).schedule_under(instance, race.model)
        except Exception:  # noqa: BLE001 - a poisoned candidate loses its slot
            entry.status = "failed"
            entry.wall = time.perf_counter() - started
            continue
        race.record_finish(entry, schedule, time.perf_counter() - started)
        if race.acceptable(entry):
            for later in entries[index + 1 :]:
                later.status = "cancelled"
            return entry, False
    return None, False


def _run_concurrent(
    entries: List[_Entry],
    instance: Instance,
    race: _Race,
    deadline: Optional[float],
    executor: Executor,
) -> Tuple[Optional[_Entry], bool]:
    """Submit every candidate up front; resolve results in rank order."""
    futures = {
        entry.rank: executor.submit(_race_worker, entry.name, instance, race.model)
        for entry in entries
    }
    accepted: Optional[_Entry] = None
    truncated = False
    for entry in entries:
        future = futures[entry.rank]
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - race.elapsed())
        try:
            schedule, wall = future.result(timeout=timeout)
        except FutureTimeoutError:
            truncated = True
            break
        except CancelledError:
            entry.status = "cancelled"
            continue
        except Exception:  # noqa: BLE001 - a poisoned candidate loses its slot
            entry.started = True
            entry.status = "failed"
            continue
        race.record_finish(entry, schedule, wall)
        if race.acceptable(entry):
            accepted = entry
            break

    # Settle the not-yet-resolved tail.  After an early acceptance every
    # later candidate is cancelled even if its result already arrived — the
    # first-acceptable-in-rank-order rule is what makes winners
    # timing-independent.  After a deadline truncation, results that *did*
    # arrive still count (best-finished-so-far is the anytime answer).
    for entry in entries:
        if entry.status != "pending":
            continue
        future = futures[entry.rank]
        never_ran = future.cancel()
        if truncated and not never_ran and future.done():
            try:
                schedule, wall = future.result(timeout=0)
                race.record_finish(entry, schedule, wall)
            except Exception:  # noqa: BLE001
                entry.started = True
                entry.status = "failed"
            continue
        entry.started = not never_ran
        entry.status = "cancelled"
    return accepted, truncated


def _single_machine_report(
    request: SolveRequest,
    policy_name: str,
    model: CostModel,
    accept_factor: float,
) -> SolveReport:
    """The structural shortcut: one machine is optimal, nothing to race."""
    from ..engine.core import _single_machine_schedule

    started = time.perf_counter()
    schedule = _single_machine_schedule(request.instance)
    wall = time.perf_counter() - started
    cost = model.schedule_cost(schedule)
    candidate = RaceCandidate(
        algorithm=SINGLE_MACHINE,
        rank=0,
        status="finished",
        started=True,
        wall_time=wall,
        cost=cost,
        winner=True,
    )
    outcome = RaceOutcome(
        candidates=(candidate,),
        deadline=request.deadline,
        accept_factor=accept_factor,
        decisive=True,
        fallback=False,
        incumbent_timeline=((wall, cost),),
    )
    return SolveReport(
        schedule=schedule,
        algorithm=SINGLE_MACHINE,
        policy=policy_name,
        portfolio=request.portfolio,
        lower_bound=0.0,
        proven_ratio=1.0,
        budget_exhausted=False,
        race=outcome,
    )
