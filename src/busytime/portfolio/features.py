"""Stable numeric features of an instance, for the learned selector.

The feature vector is the bridge between the canonical-request world (the
service's content-addressed fingerprints) and the learned algorithm
selector (:mod:`busytime.portfolio.selector`): every quantity here is
invariant under the two symmetries canonicalization quotients out — job
relabeling and global time translation — so an instance and its canonical
form produce the *identical* vector, and features computed offline from
stored canonical reports apply verbatim to live traffic.

The vector is versioned (:data:`FEATURE_VERSION`).  A trained selector
records the version it was fit against and refuses to score vectors from
another one, so a feature-set change can never silently mis-rank; the
version also travels in the fingerprint-adjacent metadata document
(:func:`features_document`) stored next to training samples.

Features deliberately stick to O(n log n) structural quantities the
:class:`~busytime.core.instance.Instance` already memoizes (properness,
clique number, length ratio) plus cheap aggregates — extraction must stay
negligible next to even the fastest candidate algorithm, or the selector
costs more than a mis-ranked pick.
"""

from __future__ import annotations

from math import log1p
from typing import Dict, List, Tuple

from ..core.instance import Instance, connected_components

__all__ = ["FEATURE_VERSION", "feature_names", "extract_features", "features_document"]

#: Version of the feature vector below.  Bump whenever a feature is added,
#: removed, reordered or redefined: selectors trained against another
#: version must fall back to the static ranking rather than score garbage.
FEATURE_VERSION = 1

_FEATURE_NAMES: Tuple[str, ...] = (
    "n",
    "log1p_n",
    "g",
    "span",
    "total_length",
    "mean_length",
    "length_ratio",
    "density",
    "clique_number",
    "clique_over_g",
    "components",
    "is_proper",
    "is_clique",
    "is_laminar",
    "has_demands",
    "max_demand",
    "mean_demand",
    "peak_over_g",
)


def feature_names() -> Tuple[str, ...]:
    """The names of the features, in vector order (frozen per version)."""
    return _FEATURE_NAMES


def extract_features(instance: Instance) -> Tuple[float, ...]:
    """The version-:data:`FEATURE_VERSION` feature vector of ``instance``.

    Every entry is a finite float, invariant under job relabeling and
    global time translation (the canonicalization symmetries), so
    ``extract_features(inst) == extract_features(canonicalize(inst).instance)``
    bit for bit.  The empty instance maps to the all-zero vector (with
    ``g`` kept, so degenerate traffic still separates by capacity).
    """
    n = instance.n
    g = instance.g
    if n == 0:
        values = dict.fromkeys(_FEATURE_NAMES, 0.0)
        values["g"] = float(g)
        return tuple(values[name] for name in _FEATURE_NAMES)
    span = instance.span
    total = instance.total_length
    # span >= min job length > 0 for non-empty instances, but guard the
    # ratio anyway: features must be finite for the regressors.
    density = total / (g * span) if span > 0 else 0.0
    values = {
        "n": float(n),
        "log1p_n": log1p(float(n)),
        "g": float(g),
        "span": span,
        "total_length": total,
        "mean_length": total / n,
        "length_ratio": instance.length_ratio(),
        "density": density,
        "clique_number": float(instance.clique_number),
        "clique_over_g": instance.clique_number / g,
        "components": float(len(connected_components(instance))),
        "is_proper": 1.0 if instance.is_proper() else 0.0,
        "is_clique": 1.0 if instance.is_clique() else 0.0,
        "is_laminar": 1.0 if instance.is_laminar() else 0.0,
        "has_demands": 1.0 if instance.has_demands else 0.0,
        "max_demand": float(instance.max_demand),
        "mean_demand": (
            instance.total_demand_length / total if total > 0 else 0.0
        ),
        "peak_over_g": instance.peak_demand / g,
    }
    return tuple(values[name] for name in _FEATURE_NAMES)


def features_document(instance: Instance) -> Dict[str, object]:
    """The fingerprint-adjacent metadata document for ``instance``.

    ``{"version", "names", "values"}`` — what the trainer stores next to a
    sample (and what debugging tools print): self-describing, so a reader
    holding only the document can tell which feature set produced it.
    """
    return {
        "version": FEATURE_VERSION,
        "names": list(_FEATURE_NAMES),
        "values": [float(v) for v in extract_features(instance)],
    }
