"""The learned algorithm selector: ridge regressors over instance features.

:class:`LearnedSelector` holds one tiny linear model per registered
algorithm — a *cost head* predicting the algorithm's cost as a multiple of
the Observation 1.1 lower bound, and a *time head* predicting its
``log1p`` wall time — fit by ridge least squares over the feature vectors
of :mod:`busytime.portfolio.features`.  Training happens offline
(``busytime train-selector``) from :class:`~busytime.service.store.ResultStore`
history: the store's disk tier is the instance distribution the service
actually saw, and the trainer replays every applicable candidate on each
historical instance to label it with measured cost and time.

:class:`LearnedPolicy` (registered as ``"learned"``) turns the selector
into a :class:`~busytime.engine.policy.SelectionPolicy`.  Its ranking is
**guarantee-first**: among the applicable candidates, those carrying the
*best available* approximation ratio are ranked first (ordered by predicted
cost), the rest follow (same order).  The engine's proven-ratio machinery
takes the best guarantee among the candidates that ran, so a learned
single pick carries exactly the certificate the static
:class:`~busytime.engine.policy.BestRatioPolicy` pick would — the learned
layer reorders *within* a guarantee class, it never trades a certificate
for a prediction.  Proven-ratio claims themselves still come only from the
capability metadata and :mod:`busytime.analysis.certificates`; the selector
asserts nothing.

Everything degrades safely: an untrained policy, a feature-version
mismatch, or a cost model that does not preserve busy-time ratios all fall
back to the static ``best_ratio`` ranking.  Scoring needs no third-party
code at all (plain-python dot products over stored weights); only
*fitting* uses numpy.
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..algorithms.base import all_schedulers, get_scheduler
from ..core.bounds import best_lower_bound
from ..core.instance import Instance
from ..engine.policy import (
    BestRatioPolicy,
    SelectionPolicy,
    _structural_shortcut,
    get_policy,
    register_policy,
)
from .features import FEATURE_VERSION, extract_features, feature_names

__all__ = [
    "SELECTOR_ENV_VAR",
    "TrainingSample",
    "LearnedSelector",
    "LearnedPolicy",
    "gather_training_samples",
    "train_selector",
    "train_from_store",
    "load_selector",
]

#: Environment variable naming a saved selector JSON.  Worker processes
#: (service pools, ``solve_many`` fan-out on spawn platforms) re-import the
#: package from scratch, so a trained model must travel out of band; the
#: ``learned`` policy loads this lazily on first use.
SELECTOR_ENV_VAR = "BUSYTIME_SELECTOR"

#: Predicted cost ratio assumed for an algorithm with no trained head and
#: no approximation ratio to fall back on (worse than every proven ratio
#: in the registry, so unknown algorithms rank last, not first).
_UNKNOWN_COST_PRIOR = 8.0

_FORMAT = "busytime-selector"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TrainingSample:
    """One labelled observation: algorithm ``algorithm`` on an instance."""

    fingerprint: str
    features: Tuple[float, ...]
    algorithm: str
    cost_ratio: float  # measured cost / max(lower bound, eps)
    wall_time: float  # measured seconds


def _fit_ridge(rows: Sequence[Sequence[float]], targets: Sequence[float], lam: float) -> List[float]:
    """Ridge least squares (bias folded in as the trailing weight)."""
    import numpy as np

    x = np.asarray(rows, dtype=np.float64)
    x = np.hstack([x, np.ones((x.shape[0], 1))])
    y = np.asarray(targets, dtype=np.float64)
    gram = x.T @ x + lam * np.eye(x.shape[1])
    return np.linalg.solve(gram, x.T @ y).tolist()


def _predict(weights: Sequence[float], scaled: Sequence[float]) -> float:
    """Plain-python dot product with the folded-in bias term."""
    total = weights[-1]
    for w, v in zip(weights, scaled):
        total += w * v
    return total


class LearnedSelector:
    """Per-algorithm cost/time regressors over the versioned feature vector.

    Instances are immutable in practice (fit once, score many); weights and
    the feature standardization (per-feature mean/std from the training
    set) are plain lists so the whole model round-trips through JSON.
    """

    def __init__(
        self,
        heads: Mapping[str, Mapping[str, object]],
        scale_mean: Sequence[float],
        scale_std: Sequence[float],
        feature_version: int = FEATURE_VERSION,
        names: Optional[Sequence[str]] = None,
        meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.heads: Dict[str, Dict[str, object]] = {
            name: dict(head) for name, head in heads.items()
        }
        self.scale_mean = [float(v) for v in scale_mean]
        self.scale_std = [float(v) if v else 1.0 for v in scale_std]
        self.feature_version = int(feature_version)
        self.names = tuple(names) if names is not None else feature_names()
        self.meta = dict(meta) if meta is not None else {}

    # -- scoring --------------------------------------------------------------

    def _scaled(self, features: Sequence[float]) -> List[float]:
        return [
            (v - m) / s
            for v, m, s in zip(features, self.scale_mean, self.scale_std)
        ]

    def predict_cost_ratio(
        self, algorithm: str, features: Sequence[float]
    ) -> Optional[float]:
        """Predicted cost / lower-bound ratio, or ``None`` without a head."""
        head = self.heads.get(algorithm)
        if head is None:
            return None
        return _predict(head["cost"], self._scaled(features))

    def predict_time(self, algorithm: str, features: Sequence[float]) -> Optional[float]:
        """Predicted wall time in seconds, or ``None`` without a head."""
        head = self.heads.get(algorithm)
        if head is None or "time" not in head:
            return None
        # The head predicts log1p(seconds); a linear model extrapolating far
        # out of distribution can push expm1 past the float range, and any
        # prediction beyond ~e^50 seconds means "effectively never" anyway.
        raw = min(_predict(head["time"], self._scaled(features)), 50.0)
        return max(0.0, math.expm1(raw))

    def compatible(self) -> bool:
        """Whether this model scores the *current* feature vector."""
        return (
            self.feature_version == FEATURE_VERSION
            and self.names == feature_names()
            and len(self.scale_mean) == len(self.names)
        )

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "feature_version": self.feature_version,
            "feature_names": list(self.names),
            "scale_mean": list(self.scale_mean),
            "scale_std": list(self.scale_std),
            "heads": {name: dict(head) for name, head in self.heads.items()},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LearnedSelector":
        if not isinstance(data, Mapping) or data.get("format") != _FORMAT:
            raise ValueError(f"not a {_FORMAT} document")
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported {_FORMAT} version {data.get('version')!r}; "
                f"this reader understands version {_FORMAT_VERSION}"
            )
        return cls(
            heads={
                str(name): dict(head)
                for name, head in dict(data.get("heads", {})).items()
            },
            scale_mean=list(data["scale_mean"]),
            scale_std=list(data["scale_std"]),
            feature_version=int(data.get("feature_version", -1)),
            names=[str(n) for n in data.get("feature_names", [])],
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LearnedSelector":
        return cls.from_dict(json.loads(Path(path).read_text()))


def load_selector(path: Union[str, Path]) -> LearnedSelector:
    """Load a saved selector (convenience wrapper over :meth:`~LearnedSelector.load`)."""
    return LearnedSelector.load(path)


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------


def _training_candidates(instance: Instance, objective: str = "busy_time"):
    """The schedulers a sample is gathered for: what a policy could rank."""
    return [
        s
        for s in all_schedulers()
        if not s.composite and s.deterministic and s.handles(instance, objective)
    ]


def gather_training_samples(
    store,
    limit: Optional[int] = None,
    max_jobs: int = 2000,
    min_version: int = 2,
) -> Tuple[List[TrainingSample], object, int]:
    """Mine a :class:`ResultStore`'s history into labelled training samples.

    Each stored report contributes its canonical instance; every applicable
    deterministic candidate is replayed on it and labelled with measured
    cost (as a multiple of the lower bound) and wall time.  Corrupt or
    pre-v``min_version`` store entries are *skipped and counted* by
    :meth:`~busytime.service.store.ResultStore.scan_history` — mining
    never aborts on bad history.  Returns ``(samples, scan, skipped_large)``
    where ``scan`` carries the skip counters and ``skipped_large`` counts
    instances above ``max_jobs`` (replaying every candidate on a huge
    instance is the trainer's cost, not the service's).
    """
    scan = store.scan_history(limit=limit, min_version=min_version)
    samples: List[TrainingSample] = []
    skipped_large = 0
    for fingerprint, report in scan.reports:
        instance = report.schedule.instance
        if instance.n == 0:
            continue
        if instance.n > max_jobs:
            skipped_large += 1
            continue
        features = extract_features(instance)
        lb = max(best_lower_bound(instance), 1e-12)
        for scheduler in _training_candidates(instance):
            started = time.perf_counter()
            try:
                schedule = scheduler(instance)
            except Exception:  # noqa: BLE001 - one bad candidate, not the run
                continue
            elapsed = time.perf_counter() - started
            samples.append(
                TrainingSample(
                    fingerprint=fingerprint,
                    features=features,
                    algorithm=scheduler.name,
                    cost_ratio=schedule.total_busy_time / lb,
                    wall_time=elapsed,
                )
            )
    return samples, scan, skipped_large


def train_selector(
    samples: Sequence[TrainingSample],
    ridge_lambda: float = 1e-3,
    min_samples: int = 3,
    meta: Optional[Mapping[str, object]] = None,
) -> LearnedSelector:
    """Fit one cost/time head per algorithm from gathered samples.

    Algorithms with fewer than ``min_samples`` observations get no head
    (the policy then falls back to their approximation ratio as a prior).
    Raises ``ValueError`` on an empty sample set: a selector trained on
    nothing is the static policy wearing a costume.
    """
    if not samples:
        raise ValueError("no training samples: the store history is empty")
    dim = len(feature_names())
    for sample in samples:
        if len(sample.features) != dim:
            raise ValueError(
                f"sample for {sample.algorithm!r} has {len(sample.features)} "
                f"features; the version-{FEATURE_VERSION} vector has {dim}"
            )
    import numpy as np

    matrix = np.asarray([s.features for s in samples], dtype=np.float64)
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0.0] = 1.0
    scaled = (matrix - mean) / std

    by_algorithm: Dict[str, List[int]] = {}
    for index, sample in enumerate(samples):
        by_algorithm.setdefault(sample.algorithm, []).append(index)

    heads: Dict[str, Dict[str, object]] = {}
    for name, indices in sorted(by_algorithm.items()):
        if len(indices) < min_samples:
            continue
        rows = scaled[indices].tolist()
        heads[name] = {
            "cost": _fit_ridge(rows, [samples[i].cost_ratio for i in indices], ridge_lambda),
            "time": _fit_ridge(
                rows, [math.log1p(samples[i].wall_time) for i in indices], ridge_lambda
            ),
            "samples": len(indices),
        }
    if not heads:
        raise ValueError(
            f"no algorithm reached min_samples={min_samples} "
            f"({len(samples)} samples across {len(by_algorithm)} algorithms)"
        )
    doc_meta = {"samples": len(samples), "ridge_lambda": ridge_lambda}
    if meta:
        doc_meta.update(meta)
    return LearnedSelector(
        heads=heads,
        scale_mean=mean.tolist(),
        scale_std=std.tolist(),
        meta=doc_meta,
    )


def train_from_store(
    store,
    limit: Optional[int] = None,
    max_jobs: int = 2000,
    ridge_lambda: float = 1e-3,
    min_samples: int = 3,
) -> Tuple[LearnedSelector, Dict[str, object]]:
    """End-to-end offline training: scan history, gather, fit.

    Emits a *counted* ``UserWarning`` when the history scan skipped corrupt
    or pre-v2 entries — training always proceeds on what remains.  Returns
    the selector and a stats dict (scan counters, sample counts) for the
    CLI to print.
    """
    samples, scan, skipped_large = gather_training_samples(
        store, limit=limit, max_jobs=max_jobs
    )
    if scan.skipped:
        warnings.warn(
            f"selector training skipped {scan.skipped} unusable store "
            f"entries ({scan.skipped_corrupt} corrupt, "
            f"{scan.skipped_version} pre-v2/unknown-version) out of "
            f"{scan.scanned} scanned",
            UserWarning,
            stacklevel=2,
        )
    selector = train_selector(
        samples,
        ridge_lambda=ridge_lambda,
        min_samples=min_samples,
        meta={"store_entries": len(scan.reports), "skipped_large": skipped_large},
    )
    stats = {
        "scanned": scan.scanned,
        "usable_entries": len(scan.reports),
        "skipped_corrupt": scan.skipped_corrupt,
        "skipped_version": scan.skipped_version,
        "skipped_large": skipped_large,
        "samples": len(samples),
        "heads": {name: head["samples"] for name, head in selector.heads.items()},
    }
    return selector, stats


# ---------------------------------------------------------------------------
# The registered policy
# ---------------------------------------------------------------------------


class LearnedPolicy(SelectionPolicy):
    """Selection policy scoring candidates with a :class:`LearnedSelector`.

    Ranking is guarantee-first (see the module docstring): candidates whose
    approximation ratio equals the best available one come first, ordered
    by predicted cost (tie-broken by predicted time, then the static
    ``(selection_priority, name)`` key, so rankings are deterministic);
    the remaining candidates follow in the same order.  The engine runs
    the top pick plus the FirstFit guarantee of last resort, so the proven
    ratio of a learned single pick equals the static policy's — the
    learned layer can only improve cost, never weaken a certificate.

    Falls back to the static ``best_ratio`` ranking whenever it cannot
    honestly score: no selector loaded, a feature-version mismatch, or a
    cost model that does not preserve busy-time ratios (the heads predict
    busy-time multiples of the busy-time lower bound).
    """

    name = "learned"

    def __init__(self, selector: Optional[LearnedSelector] = None) -> None:
        self._selector = selector
        self._env_checked = selector is not None

    # -- model management -----------------------------------------------------

    @property
    def selector(self) -> Optional[LearnedSelector]:
        self._maybe_load_env()
        return self._selector

    def set_selector(self, selector: Optional[LearnedSelector]) -> None:
        """Install (or clear) the model; clears the env-var memo."""
        self._selector = selector
        self._env_checked = selector is not None

    def _maybe_load_env(self) -> None:
        if self._env_checked:
            return
        self._env_checked = True
        path = os.environ.get(SELECTOR_ENV_VAR)
        if not path:
            return
        try:
            self._selector = LearnedSelector.load(path)
        except (OSError, ValueError, KeyError) as exc:
            # An unreadable model must not take the policy down: rank
            # statically and say why, once.
            warnings.warn(
                f"could not load selector from {SELECTOR_ENV_VAR}={path!r}: "
                f"{exc}; the 'learned' policy falls back to 'best_ratio'",
                UserWarning,
                stacklevel=2,
            )

    # -- ranking --------------------------------------------------------------

    def rank(
        self,
        instance: Instance,
        objective: str = "busy_time",
        model=None,
    ) -> List[str]:
        shortcut = _structural_shortcut(instance)
        if shortcut:
            return shortcut
        from ..core.objectives import get_cost_model

        if model is None:
            model = get_cost_model(objective)
        selector = self.selector
        if (
            selector is None
            or not selector.compatible()
            or not model.preserves_busy_time_ratios
        ):
            return BestRatioPolicy().rank(instance, objective, model=model)

        candidates = [
            s
            for s in all_schedulers()
            if not s.composite
            and s.deterministic
            and s.approximation_ratio is not None
            and s.handles(instance, objective)
        ]
        if not candidates:
            return BestRatioPolicy().rank(instance, objective, model=model)
        best_ratio = min(s.approximation_ratio for s in candidates)
        features = extract_features(instance)

        def key(s):
            predicted = selector.predict_cost_ratio(s.name, features)
            if predicted is None:
                # No trained head: the proven ratio is an honest prior on
                # the cost multiple (it upper-bounds it).
                predicted = float(s.approximation_ratio or _UNKNOWN_COST_PRIOR)
            predicted_time = selector.predict_time(s.name, features)
            return (
                0 if s.approximation_ratio == best_ratio else 1,
                predicted,
                predicted_time if predicted_time is not None else float("inf"),
                s.selection_priority,
                s.name,
            )

        return [s.name for s in sorted(candidates, key=key)]


def learned_policy() -> LearnedPolicy:
    """The registered ``"learned"`` policy singleton."""
    policy = get_policy(LearnedPolicy.name)
    assert isinstance(policy, LearnedPolicy)
    return policy


# Registered at import time so `available_policies()` (and therefore CLI
# argument choices and re-importing pool workers) always includes it; with
# no model installed it ranks exactly like best_ratio.
try:
    register_policy(LearnedPolicy())
except KeyError:  # pragma: no cover - double import under exotic reloads
    pass
