"""Anytime portfolio racing and learned algorithm selection.

The portfolio layer sits between the selection policies (which *rank*
candidates from static capability metadata or a learned model) and the
engine (which runs them): :mod:`~busytime.portfolio.racer` races the top
ranked candidates under a shared deadline with deterministic winners,
:mod:`~busytime.portfolio.features` turns instances into versioned numeric
feature vectors, and :mod:`~busytime.portfolio.selector` fits per-algorithm
cost/time regressors from :class:`~busytime.service.store.ResultStore`
history and registers them as the ``"learned"`` selection policy.

Importing this package registers the ``learned`` policy (untrained it
ranks exactly like ``best_ratio``); :mod:`busytime` imports it at package
import, so pool workers on spawn platforms see it too.
"""

from .features import FEATURE_VERSION, extract_features, feature_names, features_document
from .racer import DEFAULT_ACCEPT_FACTOR, race_candidates
from .selector import (
    SELECTOR_ENV_VAR,
    LearnedPolicy,
    LearnedSelector,
    TrainingSample,
    gather_training_samples,
    learned_policy,
    load_selector,
    train_from_store,
    train_selector,
)

__all__ = [
    "FEATURE_VERSION",
    "extract_features",
    "feature_names",
    "features_document",
    "DEFAULT_ACCEPT_FACTOR",
    "race_candidates",
    "SELECTOR_ENV_VAR",
    "LearnedPolicy",
    "LearnedSelector",
    "TrainingSample",
    "gather_training_samples",
    "learned_policy",
    "load_selector",
    "train_from_store",
    "train_selector",
]
